"""LELE double-patterning decomposition of routed clips.

The paper contrasts SADP layers with LELE (litho-etch-litho-etch)
layers.  LELE printability requires assigning each same-layer feature
to one of two masks such that features closer than the same-mask
spacing limit get different colors; odd conflict cycles force either a
design change or a stitch.  This module builds the per-layer conflict
graph over a decoded clip routing (adjacent-track parallel wire runs
conflict), 2-colors it, and reports conflicts -- the analysis a
technology team would run to compare a LELE layer against an SADP one.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.clips.clip import Clip, Vertex
from repro.router.solution import ClipRouting


@dataclass(frozen=True)
class WireRun:
    """A maximal same-net straight run on one layer."""

    net_name: str
    z: int
    track: int           # cross coordinate (row for H layers, col for V)
    start: int           # along-coordinate span [start, end]
    end: int

    def overlaps_along(self, other: "WireRun", margin: int = 0) -> bool:
        return self.start <= other.end + margin and other.start <= self.end + margin


@dataclass
class LayerColoring:
    """Two-coloring result for one layer slot."""

    z: int
    colors: dict[WireRun, int] = field(default_factory=dict)
    conflicts: list[tuple[WireRun, WireRun]] = field(default_factory=list)

    @property
    def is_two_colorable(self) -> bool:
        return not self.conflicts

    def mask_counts(self) -> tuple[int, int]:
        a = sum(1 for color in self.colors.values() if color == 0)
        return (a, len(self.colors) - a)


@dataclass
class ColoringReport:
    """Decomposition over all layers of a clip routing."""

    layers: dict[int, LayerColoring] = field(default_factory=dict)

    @property
    def total_conflicts(self) -> int:
        return sum(len(layer.conflicts) for layer in self.layers.values())

    @property
    def decomposable(self) -> bool:
        return self.total_conflicts == 0


def extract_runs(clip: Clip, routing: ClipRouting) -> list[WireRun]:
    """Merge each net's wire edges into maximal straight runs."""
    per_key: dict[tuple[str, int, int], list[int]] = defaultdict(list)
    for net in routing.nets:
        for a, b in net.wire_edges:
            z = a[2]
            horizontal = clip.horizontal[z]
            if horizontal:
                track, start = a[1], min(a[0], b[0])
            else:
                track, start = a[0], min(a[1], b[1])
            per_key[(net.net_name, z, track)].append(start)

    runs: list[WireRun] = []
    for (net_name, z, track), starts in per_key.items():
        starts.sort()
        run_start = prev = starts[0]
        for value in starts[1:]:
            if value != prev + 1:
                runs.append(WireRun(net_name, z, track, run_start, prev + 1))
                run_start = value
            prev = value
        runs.append(WireRun(net_name, z, track, run_start, prev + 1))
    return runs


def _conflict_edges(
    runs: list[WireRun], same_mask_reach: int
) -> list[tuple[WireRun, WireRun]]:
    """Pairs of runs on tracks within ``same_mask_reach`` that overlap
    longitudinally -- they must take different masks."""
    by_track: dict[int, list[WireRun]] = defaultdict(list)
    for run in runs:
        by_track[run.track].append(run)
    edges = []
    for track, members in by_track.items():
        for reach in range(1, same_mask_reach + 1):
            for other in by_track.get(track + reach, ()):  # dedupe upward
                for run in members:
                    if run.overlaps_along(other):
                        edges.append((run, other))
    return edges


def color_layer(
    clip: Clip, runs: list[WireRun], z: int, same_mask_reach: int = 1
) -> LayerColoring:
    """BFS 2-coloring of one layer's conflict graph.

    Odd cycles surface as ``conflicts``: edges whose endpoints ended up
    on the same mask.
    """
    layer_runs = [run for run in runs if run.z == z]
    edges = _conflict_edges(layer_runs, same_mask_reach)
    adjacency: dict[WireRun, list[WireRun]] = defaultdict(list)
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)

    coloring = LayerColoring(z=z)
    for run in layer_runs:
        if run in coloring.colors:
            continue
        coloring.colors[run] = 0
        queue = deque([run])
        while queue:
            current = queue.popleft()
            for neighbor in adjacency[current]:
                if neighbor not in coloring.colors:
                    coloring.colors[neighbor] = 1 - coloring.colors[current]
                    queue.append(neighbor)
    for a, b in edges:
        if coloring.colors[a] == coloring.colors[b]:
            coloring.conflicts.append((a, b))
    return coloring


def decompose_lele(
    clip: Clip,
    routing: ClipRouting,
    same_mask_reach: int = 1,
    layers: "tuple[int, ...] | None" = None,
) -> ColoringReport:
    """Two-color every (or the given) layer of a routed clip."""
    runs = extract_runs(clip, routing)
    report = ColoringReport()
    targets = layers if layers is not None else tuple(range(clip.nz))
    for z in targets:
        report.layers[z] = color_layer(clip, runs, z, same_mask_reach)
    return report
