"""OptRouter: the paper's ILP-based optimal detailed router.

Public entry point:

    >>> from repro.router import OptRouter, RuleConfig
    >>> from repro.clips import make_synthetic_clip
    >>> result = OptRouter().route(make_synthetic_clip(), RuleConfig())
    >>> result.status
    <RouteStatus.OPTIMAL: 'optimal'>
"""

from repro.router.rules import RuleConfig, SadpParams, ViaRestriction, is_restriction
from repro.router.graph import SwitchboxGraph, build_graph
from repro.router.formulation import (
    BaseFormulation,
    FormulationCache,
    RoutingIlp,
    build_routing_ilp,
)
from repro.router.solution import ClipRouting, NetSolution, decode_solution
from repro.router.optrouter import OptRouteResult, OptRouter, RouteStatus, WarmStart
from repro.router.baseline import BaselineClipRouter, BaselineResult

__all__ = [
    "RuleConfig",
    "SadpParams",
    "ViaRestriction",
    "SwitchboxGraph",
    "build_graph",
    "BaseFormulation",
    "FormulationCache",
    "RoutingIlp",
    "build_routing_ilp",
    "ClipRouting",
    "NetSolution",
    "decode_solution",
    "OptRouter",
    "OptRouteResult",
    "RouteStatus",
    "WarmStart",
    "is_restriction",
    "BaselineClipRouter",
    "BaselineResult",
]
