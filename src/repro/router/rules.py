"""Routing-rule configuration for OptRouter.

Captures the paper's rule dimensions (Section 3.2 / Table 3):

- via adjacency restriction: none, orthogonal (4 neighbors blocked) or
  full (orthogonal + diagonal, 8 neighbors blocked);
- which metal layers are SADP-patterned (end-of-line rules apply);
- whether larger via shapes (bar / square) are offered to the router;
- the SADP forbidden end-of-line offset patterns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ViaRestriction(enum.Enum):
    """How many neighbor via sites a placed via blocks."""

    NONE = 0
    ORTHOGONAL = 4
    FULL = 8

    def blocked_offsets(self) -> tuple[tuple[int, int], ...]:
        """Neighbor (dx, dy) offsets blocked by a via at (x, y)."""
        if self is ViaRestriction.NONE:
            return ()
        orthogonal = ((1, 0), (-1, 0), (0, 1), (0, -1))
        if self is ViaRestriction.ORTHOGONAL:
            return orthogonal
        return orthogonal + ((1, 1), (1, -1), (-1, 1), (-1, -1))


@dataclass(frozen=True)
class SadpParams:
    """Forbidden end-of-line (EOL) pairings for SADP layers.

    Offsets are in wire-direction ("along") and cross-track ("cross")
    track units, from the perspective of an EOL whose metal extends in
    the *positive* along direction (the paper's ``p_r``: wire comes
    from the right when along = x).  The figure-5 defaults forbid:

    - opposite-polarity EOLs (facing tips) one step away along the
      track and within one column on adjacent tracks (5 sites);
    - same-polarity EOLs misaligned by one column on adjacent tracks
      (4 sites); exactly aligned EOLs stay legal, as SADP line-end
      cutting permits.

    The paper gives the patterns pictorially without coordinates, so
    the offsets are parameters here; the defaults reproduce the five
    forbidden sites of Figure 5(b) and the misalignment restriction of
    Figure 5(c).
    """

    opposite_offsets: tuple[tuple[int, int], ...] = (
        (-1, 0), (0, 1), (0, -1), (-1, 1), (-1, -1),
    )
    same_offsets: tuple[tuple[int, int], ...] = (
        (-1, 1), (-1, -1), (1, 1), (1, -1),
    )

    def opposite_pairs(self) -> tuple[tuple[int, int], ...]:
        """Forbidden offsets of a *negative* EOL relative to a positive
        one, in (along, cross) units -- evaluated once per pos/neg pair,
        always from the positive-EOL perspective."""
        return self.opposite_offsets

    def same_pairs(self, side: int) -> tuple[tuple[int, int], ...]:
        """Forbidden offsets of a same-polarity EOL relative to an EOL
        of polarity ``side`` (+1 / -1), in (along, cross) units.  The
        patterns are given from the positive-EOL perspective and mirror
        along the wire direction for negative EOLs."""
        return tuple((side * da, dc) for da, dc in self.same_offsets)


def eol_grid_offset(
    horizontal: bool, x: int, y: int, along: int, cross: int
) -> tuple[int, int]:
    """Map an (along, cross) EOL offset to grid (x, y) on a layer whose
    routing direction is ``horizontal``.

    This is the single source of truth for SADP offset orientation:
    the ILP formulation and the geometric DRC oracle both consume it,
    so the two sides cannot silently drift apart (the formulation
    semantics checker additionally proves they agree -- see
    ``docs/static_analysis.md``).
    """
    if horizontal:
        return x + along, y + cross
    return x + cross, y + along


@dataclass(frozen=True)
class RuleConfig:
    """A complete rule configuration evaluated by OptRouter.

    Attributes:
        name: e.g. ``"RULE3"``.
        via_restriction: adjacency blocking mode (applied to all cut
            layers present in the clip, V12..V78 in the paper).
        sadp_min_metal: lowest SADP metal; all layers at or above it
            follow SADP EOL rules (``None`` = no SADP layers).  Matches
            the paper's "SADP >= Mx" configurations.
        allow_via_shapes: offer bar/square via shapes to the ILP.
        sadp: EOL pattern parameters.
    """

    name: str = "RULE1"
    via_restriction: ViaRestriction = ViaRestriction.NONE
    sadp_min_metal: int | None = None
    allow_via_shapes: bool = False
    sadp: SadpParams = field(default_factory=SadpParams)

    def sadp_applies_to(self, metal: int) -> bool:
        return self.sadp_min_metal is not None and metal >= self.sadp_min_metal

    def describe(self) -> str:
        sadp = (
            "No SADP"
            if self.sadp_min_metal is None
            else f"SADP >= M{self.sadp_min_metal}"
        )
        return (
            f"{self.name}: {sadp}, "
            f"{self.via_restriction.value} neighbors blocked"
        )


def is_restriction(base: RuleConfig, other: RuleConfig) -> bool:
    """True when ``other`` only *adds* constraints relative to ``base``.

    Formally: every routing feasible under ``other`` is feasible under
    ``base`` (the rule deltas of Table 3 -- via-adjacency blocking and
    SADP EOL patterns -- are pure restrictions of the routing space),
    and both rules route over the same graph with the same arc costs.
    When this holds, ``base``'s optimal objective is a valid lower
    bound on ``other``'s optimum, and a ``base``-optimal routing that
    passes ``other``'s DRC is ``other``-optimal.  The cross-rule warm
    path (:mod:`repro.eval.flow`) relies on exactly this predicate.

    It does NOT hold when ``other`` *relaxes* anything: offering via
    shapes that ``base`` lacks (cheaper arcs appear), dropping one of
    ``base``'s blocked via offsets, or forbidding fewer SADP sites on a
    layer ``base`` patterns.
    """
    if base.allow_via_shapes != other.allow_via_shapes:
        # Different graphs (shape-via arcs exist on one side only):
        # objectives are not comparable in either direction.
        return False
    if not set(base.via_restriction.blocked_offsets()) <= set(
        other.via_restriction.blocked_offsets()
    ):
        return False
    if base.sadp_min_metal is not None:
        if other.sadp_min_metal is None:
            return False
        if other.sadp_min_metal > base.sadp_min_metal:
            return False  # other patterns fewer layers
        if not (
            set(base.sadp.opposite_offsets) <= set(other.sadp.opposite_offsets)
            and set(base.sadp.same_offsets) <= set(other.sadp.same_offsets)
        ):
            return False
    return True
