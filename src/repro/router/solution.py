"""Decoding of ILP solutions into routed-clip form."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clips.clip import Vertex
from repro.ilp.status import Solution
from repro.router.formulation import RoutingIlp
from repro.router.graph import ArcKind


@dataclass
class ShapeViaUse:
    """One placed via shape: its footprint and entry/exit vertices."""

    lower_slot: int
    shape_name: str
    lower_members: tuple[Vertex, ...]
    upper_members: tuple[Vertex, ...]


@dataclass
class NetSolution:
    """Decoded routing of one net.

    ``wire_edges`` are unordered grid-vertex pairs on one layer;
    ``vias`` are single-via placements ``(x, y, lower_slot)``.
    """

    net_name: str
    wire_edges: list[tuple[Vertex, Vertex]] = field(default_factory=list)
    vias: list[tuple[int, int, int]] = field(default_factory=list)
    shape_vias: list[ShapeViaUse] = field(default_factory=list)

    @property
    def wirelength(self) -> int:
        return len(self.wire_edges)

    @property
    def n_vias(self) -> int:
        return len(self.vias) + len(self.shape_vias)

    def used_vertices(self) -> set[Vertex]:
        used: set[Vertex] = set()
        for a, b in self.wire_edges:
            used.add(a)
            used.add(b)
        for x, y, z in self.vias:
            used.add((x, y, z))
            used.add((x, y, z + 1))
        for use in self.shape_vias:
            used.update(use.lower_members)
            used.update(use.upper_members)
        return used


@dataclass
class ClipRouting:
    """Decoded solution for a whole clip."""

    nets: list[NetSolution]
    cost: float

    @property
    def total_wirelength(self) -> int:
        return sum(net.wirelength for net in self.nets)

    @property
    def total_vias(self) -> int:
        return sum(net.n_vias for net in self.nets)


def decode_solution(ilp: RoutingIlp, solution: Solution) -> ClipRouting:
    """Convert a solved ILP into per-net wiring."""
    graph = ilp.graph
    nets: list[NetSolution] = []
    for nv in ilp.nets:
        decoded = NetSolution(net_name=nv.net.name)
        seen_undirected: set[frozenset[int]] = set()
        shape_entries: set[int] = set()
        for arc_index, e in nv.e.items():
            if solution.values.get(e.index, 0) < 0.5:
                continue
            arc = graph.arcs[arc_index]
            if arc.layer == -1:
                continue  # virtual supersource/supersink arc
            key = frozenset((arc.tail, arc.head))
            if key in seen_undirected:
                continue
            seen_undirected.add(key)
            if arc.kind is ArcKind.WIRE:
                decoded.wire_edges.append(
                    (graph.vertex_xyz(arc.tail), graph.vertex_xyz(arc.head))
                )
            elif arc.kind is ArcKind.VIA:
                lo = min(arc.tail, arc.head, key=lambda v: graph.vertex_xyz(v)[2])
                x, y, z = graph.vertex_xyz(lo)
                decoded.vias.append((x, y, z))
            else:  # SHAPE
                rep = arc.head if not graph.is_grid_vertex(arc.head) else arc.tail
                shape_entries.add(rep)
        for inst in graph.shape_instances:
            if inst.rep in shape_entries:
                decoded.shape_vias.append(
                    ShapeViaUse(
                        lower_slot=inst.lower_slot,
                        shape_name=inst.shape.name,
                        lower_members=tuple(
                            graph.vertex_xyz(v) for v in inst.lower_members
                        ),
                        upper_members=tuple(
                            graph.vertex_xyz(v) for v in inst.upper_members
                        ),
                    )
                )
        nets.append(decoded)
    return ClipRouting(nets=nets, cost=solution.objective or 0.0)
