"""Heuristic baseline clip router (the "commercial router" stand-in).

Routes clip nets *sequentially* with A* tree growth over the same
switchbox graph OptRouter uses, honoring unidirectional layers, vertex
exclusivity, pin blocking and via-adjacency restrictions greedily.  It
is deliberately non-optimal: net ordering and greedy commitment leave
cost on the table, which is exactly what the paper's footnote-6
validation measures (OptRouter's Δcost vs the commercial router is
always <= 0).

SADP end-of-line rules are not enforced here (mirroring the validation
setting); compare against OptRouter under configurations without SADP
layers, or treat baseline results on SADP configs as lower bounds on
the heuristic's cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.clips.clip import Clip, ClipNet, Vertex
from repro.router.rules import RuleConfig
from repro.util.rng import make_rng


@dataclass
class BaselineNetRoute:
    net_name: str
    wire_edges: list[tuple[Vertex, Vertex]] = field(default_factory=list)
    vias: list[tuple[int, int, int]] = field(default_factory=list)

    @property
    def wirelength(self) -> int:
        return len(self.wire_edges)


@dataclass
class BaselineResult:
    """Outcome of heuristically routing one clip."""

    clip_name: str
    rule_name: str
    feasible: bool
    cost: float | None = None
    wirelength: int = 0
    n_vias: int = 0
    nets: list[BaselineNetRoute] = field(default_factory=list)
    restarts_used: int = 0


class BaselineClipRouter:
    """Sequential A* router over a clip with random-restart ordering."""

    def __init__(
        self,
        wire_cost: float = 1.0,
        via_cost: float = 4.0,
        n_restarts: int = 8,
        seed: int = 0,
    ) -> None:
        self.wire_cost = wire_cost
        self.via_cost = via_cost
        self.n_restarts = n_restarts
        self.seed = seed

    def route(self, clip: Clip, rules: RuleConfig | None = None) -> BaselineResult:
        """Route a clip; retries with shuffled net orderings on failure
        and keeps the cheapest feasible attempt."""
        if rules is None:
            rules = RuleConfig()
        rng = make_rng(self.seed)
        order = list(range(len(clip.nets)))
        best: BaselineResult | None = None
        for restart in range(max(1, self.n_restarts)):
            attempt = self._attempt(clip, rules, order)
            if attempt.feasible and (best is None or attempt.cost < best.cost):
                best = attempt
                best.restarts_used = restart + 1
            rng.shuffle(order)
        if best is not None:
            return best
        failed = BaselineResult(
            clip_name=clip.name, rule_name=rules.name, feasible=False,
            restarts_used=max(1, self.n_restarts),
        )
        return failed

    # -- one sequential pass ------------------------------------------------

    def _attempt(
        self, clip: Clip, rules: RuleConfig, order: list[int]
    ) -> BaselineResult:
        pin_vertices: dict[str, set[Vertex]] = {
            net.name: {v for pin in net.pins for v in pin.access}
            for net in clip.nets
        }
        occupied: dict[Vertex, str] = {}
        via_blocked: set[tuple[int, int, int]] = set()
        offsets = rules.via_restriction.blocked_offsets()

        nets: list[BaselineNetRoute] = []
        total_cost = 0.0
        for index in order:
            net = clip.nets[index]
            blocked = set(clip.obstacles)
            for other, vids in pin_vertices.items():
                if other != net.name:
                    blocked |= vids
            blocked |= {v for v, owner in occupied.items() if owner != net.name}
            routed = self._route_net(clip, net, blocked, via_blocked, offsets)
            if routed is None:
                return BaselineResult(
                    clip_name=clip.name, rule_name=rules.name, feasible=False
                )
            for a, b in routed.wire_edges:
                occupied[a] = net.name
                occupied[b] = net.name
            for x, y, z in routed.vias:
                occupied[(x, y, z)] = net.name
                occupied[(x, y, z + 1)] = net.name
                for dx, dy in offsets:
                    via_blocked.add((x + dx, y + dy, z))
            total_cost += (
                self.wire_cost * routed.wirelength
                + self.via_cost * len(routed.vias)
            )
            nets.append(routed)

        return BaselineResult(
            clip_name=clip.name,
            rule_name=rules.name,
            feasible=True,
            cost=total_cost,
            wirelength=sum(n.wirelength for n in nets),
            n_vias=sum(len(n.vias) for n in nets),
            nets=nets,
        )

    def _route_net(
        self,
        clip: Clip,
        net: ClipNet,
        blocked: set[Vertex],
        via_blocked: set[tuple[int, int, int]],
        offsets: tuple[tuple[int, int], ...] = (),
    ) -> "BaselineNetRoute | None":
        route = BaselineNetRoute(net_name=net.name)
        tree: set[Vertex] = set(net.source.access) - blocked
        if not tree:
            return None
        own_vias: set[tuple[int, int, int]] = set()
        # Local copy so same-net vias also respect the restriction.
        local_blocked = set(via_blocked)
        for sink in net.sinks:
            targets = set(sink.access) - blocked
            if not targets:
                return None
            if tree & targets:
                tree |= targets
                continue
            path = self._legal_path(
                clip, tree, targets, blocked, local_blocked, own_vias, offsets
            )
            if path is None:
                return None
            for a, b in zip(path, path[1:]):
                if a[2] != b[2]:
                    lo = a if a[2] < b[2] else b
                    route.vias.append(lo)
                    own_vias.add(lo)
                    for dx, dy in offsets:
                        local_blocked.add((lo[0] + dx, lo[1] + dy, lo[2]))
                else:
                    route.wire_edges.append((a, b))
            tree.update(path)
            tree |= targets
        return route

    def _legal_path(
        self, clip, tree, targets, blocked, local_blocked, own_vias, offsets
    ) -> "list[Vertex] | None":
        """A* with repair: paths whose own vias violate the adjacency
        restriction get the offending site forbidden and are retried."""
        forbidden = set(local_blocked)
        for _repair in range(6):
            path = self._astar(clip, tree, targets, blocked, forbidden, own_vias)
            if path is None:
                return None
            new_vias = [
                (a if a[2] < b[2] else b)
                for a, b in zip(path, path[1:])
                if a[2] != b[2]
            ]
            bad = self._intra_violation(new_vias, offsets)
            if bad is None:
                return path
            forbidden.add(bad)
        return None

    @staticmethod
    def _intra_violation(
        vias: list[tuple[int, int, int]],
        offsets: tuple[tuple[int, int], ...],
    ) -> "tuple[int, int, int] | None":
        if not offsets:
            return None
        by_layer: dict[int, list[tuple[int, int, int]]] = {}
        for site in vias:
            by_layer.setdefault(site[2], []).append(site)
        for sites in by_layer.values():
            occupied = set(sites)
            for x, y, z in sites:
                for dx, dy in offsets:
                    if (x + dx, y + dy, z) in occupied:
                        return (x, y, z)
        return None

    def _astar(
        self,
        clip: Clip,
        sources: set[Vertex],
        targets: set[Vertex],
        blocked: set[Vertex],
        via_blocked: set[tuple[int, int, int]],
        own_vias: set[tuple[int, int, int]],
    ) -> "list[Vertex] | None":
        def heuristic(v: Vertex) -> float:
            return min(
                self.wire_cost * (abs(v[0] - t[0]) + abs(v[1] - t[1]))
                + self.via_cost * abs(v[2] - t[2])
                for t in targets
            )

        def neighbors(v: Vertex):
            x, y, z = v
            if clip.horizontal[z]:
                steps = ((x - 1, y, z), (x + 1, y, z))
            else:
                steps = ((x, y - 1, z), (x, y + 1, z))
            for nbr in steps:
                if clip.in_bounds(nbr):
                    yield nbr, self.wire_cost
            for dz in (-1, 1):
                nbr = (x, y, z + dz)
                if not clip.in_bounds(nbr):
                    continue
                site = (x, y, min(z, z + dz))
                if site in via_blocked and site not in own_vias:
                    continue
                yield nbr, self.via_cost

        g: dict[Vertex, float] = {s: 0.0 for s in sources}
        parent: dict[Vertex, Vertex] = {}
        heap = [(heuristic(s), 0.0, s) for s in sources]
        heapq.heapify(heap)
        while heap:
            _f, cost, v = heapq.heappop(heap)
            if cost > g.get(v, float("inf")):
                continue
            if v in targets:
                path = [v]
                while v in parent:
                    v = parent[v]
                    path.append(v)
                path.reverse()
                return path
            for nbr, step in neighbors(v):
                if nbr in blocked and nbr not in targets:
                    continue
                ng = cost + step
                if ng < g.get(nbr, float("inf")):
                    g[nbr] = ng
                    parent[nbr] = v
                    heapq.heappush(heap, (ng + heuristic(nbr), ng, nbr))
        return None
