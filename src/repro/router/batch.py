"""Parallel batch routing of clip populations.

The paper closes by noting that clip-level optimal routing "opens up
the possibility of (massively distributed) local improvement": each
clip is an independent ILP, so a population parallelizes trivially.
This module fans clip/rule pairs across worker processes.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.clips.clip import Clip
from repro.router.optrouter import OptRouteResult, OptRouter
from repro.router.rules import RuleConfig


@dataclass(frozen=True)
class _Job:
    clip: Clip
    rules: RuleConfig
    wire_cost: float
    via_cost: float
    backend: str
    time_limit: float | None
    certify: bool = True


def _run_job(job: _Job) -> OptRouteResult:
    router = OptRouter(
        wire_cost=job.wire_cost,
        via_cost=job.via_cost,
        backend=job.backend,
        time_limit=job.time_limit,
        certify=job.certify,
    )
    return router.route(job.clip, job.rules)


def route_clips_parallel(
    clips: Sequence[Clip],
    rules: "RuleConfig | Sequence[RuleConfig]",
    n_workers: int = 2,
    router: OptRouter | None = None,
) -> list[OptRouteResult]:
    """Route every (clip, rule) pair across worker processes.

    ``rules`` may be a single configuration (applied to every clip) or
    one configuration per clip.  Results come back in input order.
    With ``n_workers <= 1`` the work runs inline (useful under
    debuggers and on platforms without fork).
    """
    if router is None:
        router = OptRouter(time_limit=60.0)
    if isinstance(rules, RuleConfig):
        rule_list = [rules] * len(clips)
    else:
        rule_list = list(rules)
        if len(rule_list) != len(clips):
            raise ValueError("need one rule config per clip")

    jobs = [
        _Job(
            clip=clip,
            rules=rule,
            wire_cost=router.wire_cost,
            via_cost=router.via_cost,
            backend=router.backend,
            time_limit=router.time_limit,
            certify=router.certify,
        )
        for clip, rule in zip(clips, rule_list)
    ]
    if n_workers <= 1:
        return [_run_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_run_job, jobs))
