"""Parallel batch routing of clip populations.

The paper closes by noting that clip-level optimal routing "opens up
the possibility of (massively distributed) local improvement": each
clip is an independent ILP, so a population parallelizes trivially.
This module fans clip/rule pairs across the supervised runner
(:mod:`repro.exec.runner`): a crashed or wedged worker yields a
structured ERROR/TIMEOUT result for its own job only — sibling jobs
and their input-order positions are preserved.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.clips.clip import Clip
from repro.exec.faults import FaultPlan
from repro.exec.policy import SupervisorConfig
from repro.exec.runner import RouteJob, SupervisedRunner
from repro.router.optrouter import OptRouteResult, OptRouter
from repro.router.rules import RuleConfig


def route_clips_parallel(
    clips: Sequence[Clip],
    rules: "RuleConfig | Sequence[RuleConfig]",
    n_workers: int = 2,
    router: OptRouter | None = None,
    supervisor: SupervisorConfig | None = None,
    fault_plan: FaultPlan | None = None,
    solve_cache_dir: str | None = None,
) -> list[OptRouteResult]:
    """Route every (clip, rule) pair under the supervised runner.

    ``rules`` may be a single configuration (applied to every clip) or
    one configuration per clip.  Results come back in input order.
    The ``router``'s settings (including subclasses) are honored in
    every isolation mode; with ``n_workers == 1`` the work runs inline
    in this process (useful under debuggers and on platforms without
    fork).  ``supervisor`` overrides retry/fallback/deadline policy —
    its worker count is reconciled with ``n_workers`` rather than
    silently dropping either.  ``solve_cache_dir`` points every worker
    at a shared persistent solve cache (repeated populations replay
    identical solves from disk).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if router is None:
        router = OptRouter(time_limit=60.0)
    if isinstance(rules, RuleConfig):
        rule_list = [rules] * len(clips)
    else:
        rule_list = list(rules)
        if len(rule_list) != len(clips):
            raise ValueError("need one rule config per clip")

    jobs = [
        replace(
            RouteJob.from_router(clip, rule, router),
            solve_cache_dir=solve_cache_dir,
        )
        for clip, rule in zip(clips, rule_list, strict=True)
    ]
    if supervisor is None:
        supervisor = SupervisorConfig(
            n_workers=n_workers,
            isolation="inline" if n_workers == 1 else "process",
        )
    elif supervisor.n_workers != n_workers:
        supervisor = replace(supervisor, n_workers=n_workers)
    return SupervisedRunner(supervisor).run(jobs, fault_plan=fault_plan)
