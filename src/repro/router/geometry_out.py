"""Physical geometry emission for routed clips.

Converts a decoded track-level routing into drawn nm geometry (wire
rectangles at each layer's drawn width, via cut rectangles), the form
a router hands to signoff DRC/extraction.  Includes a same-layer
minimum-spacing check over the emitted shapes, complementing the
track-level checker in :mod:`repro.drc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clips.clip import Clip
from repro.geometry import Rect
from repro.router.solution import ClipRouting
from repro.tech.presets import Technology


@dataclass(frozen=True)
class DrawnShape:
    """One drawn rectangle: net + metal layer + nm geometry."""

    net_name: str
    metal: int
    rect: Rect
    is_via_cut: bool = False


@dataclass
class ClipGeometry:
    """All drawn shapes of a routed clip (clip-local nm coordinates)."""

    shapes: list[DrawnShape] = field(default_factory=list)

    def on_metal(self, metal: int) -> list[DrawnShape]:
        return [s for s in self.shapes if s.metal == metal and not s.is_via_cut]

    def total_area(self) -> int:
        return sum(s.rect.area for s in self.shapes)


def _track_point(clip: Clip, x: int, y: int) -> tuple[int, int]:
    return (x * clip.x_pitch, y * clip.y_pitch)


def routing_to_geometry(
    clip: Clip, routing: ClipRouting, tech: Technology
) -> ClipGeometry:
    """Emit drawn geometry for a routing, widths from the tech stack.

    Wire rectangles extend half a width on each side of the track
    centerline and run end-to-end over each maximal straight run; via
    cuts are squares of the lower layer's width centered on the site.
    """
    geometry = ClipGeometry()
    for net in routing.nets:
        # Merge per (layer, track) for clean long rectangles.
        runs: dict[tuple[int, int], list[int]] = {}
        for a, b in net.wire_edges:
            z = a[2]
            if clip.horizontal[z]:
                key, start = (z, a[1]), min(a[0], b[0])
            else:
                key, start = (z, a[0]), min(a[1], b[1])
            runs.setdefault(key, []).append(start)
        for (z, track), starts in runs.items():
            metal = clip.metal_of(z)
            width = tech.stack.layer(metal).width
            half = width // 2
            starts.sort()
            run_start = prev = starts[0]

            def emit(first: int, last: int) -> None:
                if clip.horizontal[z]:
                    x0, y0 = _track_point(clip, first, track)
                    x1, _ = _track_point(clip, last + 1, track)
                    rect = Rect(x0 - half, y0 - half, x1 + half, y0 + half)
                else:
                    x0, y0 = _track_point(clip, track, first)
                    _, y1 = _track_point(clip, track, last + 1)
                    rect = Rect(x0 - half, y0 - half, x0 + half, y1 + half)
                geometry.shapes.append(DrawnShape(net.net_name, metal, rect))

            for s in starts[1:]:
                if s != prev + 1:
                    emit(run_start, prev)
                    run_start = s
                prev = s
            emit(run_start, prev)

        for x, y, z in net.vias:
            lower = clip.metal_of(z)
            cut = tech.stack.layer(lower).width
            half = cut // 2
            cx, cy = _track_point(clip, x, y)
            rect = Rect(cx - half, cy - half, cx + half, cy + half)
            geometry.shapes.append(
                DrawnShape(net.net_name, lower, rect, is_via_cut=True)
            )
            # Landing pads on both metal layers.
            for metal in (lower, lower + 1):
                width = tech.stack.layer(metal).width
                pad_half = width // 2
                geometry.shapes.append(
                    DrawnShape(
                        net.net_name, metal,
                        Rect(cx - pad_half, cy - pad_half,
                             cx + pad_half, cy + pad_half),
                    )
                )
    return geometry


@dataclass(frozen=True)
class SpacingViolation:
    """Two foreign shapes closer than the layer's minimum spacing."""

    metal: int
    nets: tuple[str, str]
    gap_nm: int
    required_nm: int


def check_min_spacing(
    geometry: ClipGeometry,
    tech: Technology,
    spacing_frac: float = 0.5,
) -> list[SpacingViolation]:
    """Same-layer spacing between different nets' drawn shapes.

    Minimum spacing defaults to half the layer pitch minus the drawn
    width complement -- on a regular track grid that makes same-track
    abutment and adjacent tracks legal, and anything closer a
    violation (as in simple lambda-rule decks).
    """
    violations = []
    metals = {s.metal for s in geometry.shapes}
    for metal in sorted(metals):
        layer = tech.stack.layer(metal)
        required = max(1, int(layer.pitch * spacing_frac) - layer.width // 2)
        shapes = geometry.on_metal(metal)
        for i, a in enumerate(shapes):
            for b in shapes[i + 1:]:
                if a.net_name == b.net_name:
                    continue
                gap = a.rect.distance_to(b.rect)
                if gap < required:
                    violations.append(
                        SpacingViolation(
                            metal=metal,
                            nets=(a.net_name, b.net_name),
                            gap_nm=gap,
                            required_nm=required,
                        )
                    )
    return violations
