"""Switchbox routing graph for OptRouter.

Builds the directed-arc graph of Section 3.1 from a
:class:`~repro.clips.clip.Clip`:

- one vertex per (column, row, layer-slot) track crossing;
- wire arcs (both directions) along each layer's routing direction
  (unidirectional layers, as in all the paper's studies);
- single-via arcs between vertically adjacent vertices;
- optionally, representative vertices for larger via shapes (bar /
  square), each connected to every member vertex on its lower and
  upper footprint (Figure 2).

Virtual supersource / supersink vertices are *per-net* and are added by
the formulation, not here; the graph holds only shared physical
structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.clips.clip import Clip, Vertex
from repro.router.rules import RuleConfig
from repro.tech.via import ViaShape


class ArcKind(enum.Enum):
    WIRE = "wire"
    VIA = "via"
    SHAPE = "shape"  # arc between a member vertex and a shape-via rep


@dataclass(frozen=True)
class Arc:
    """A directed arc of the routing graph."""

    index: int
    tail: int
    head: int
    kind: ArcKind
    cost: float
    layer: int  # slot of the wire layer, or lower slot for via arcs
    reverse: int = -1  # index of the opposite-direction arc


@dataclass(frozen=True)
class ShapeViaInstance:
    """One placement of a bar/square via shape.

    ``rep`` is the representative vertex id; members are the covered
    grid vertices on the lower and upper layers; ``arcs`` lists all arc
    indices incident to ``rep``.
    """

    rep: int
    lower_slot: int
    shape: ViaShape
    lower_members: tuple[int, ...]
    upper_members: tuple[int, ...]
    arcs: tuple[int, ...]
    cost: float

    @property
    def members(self) -> tuple[int, ...]:
        return self.lower_members + self.upper_members


@dataclass
class SwitchboxGraph:
    """The shared physical routing graph of one clip."""

    clip: Clip
    wire_cost: float = 1.0
    via_cost: float = 4.0
    arcs: list[Arc] = field(default_factory=list)
    out_arcs: dict[int, list[int]] = field(default_factory=dict)
    in_arcs: dict[int, list[int]] = field(default_factory=dict)
    shape_instances: list[ShapeViaInstance] = field(default_factory=list)
    via_site_arcs: dict[tuple[int, int, int], tuple[int, int]] = field(
        default_factory=dict
    )  # (x, y, lower_slot) -> (up_arc, down_arc)
    n_vertices: int = 0
    #: (tail, head) -> arc index, physical WIRE arcs only.  Virtual
    #: arcs (layer -1) are excluded, so lookups keep the historical
    #: "physical arc wins" semantics of the old linear scan.
    wire_arc_index: dict[tuple[int, int], int] = field(default_factory=dict)

    # -- vertex addressing ------------------------------------------------

    def vid(self, x: int, y: int, z: int) -> int:
        return (z * self.clip.ny + y) * self.clip.nx + x

    def vertex_xyz(self, vid: int) -> Vertex:
        nx, ny = self.clip.nx, self.clip.ny
        x = vid % nx
        rest = vid // nx
        return (x, rest % ny, rest // ny)

    @property
    def n_grid_vertices(self) -> int:
        return self.clip.nx * self.clip.ny * self.clip.nz

    def is_grid_vertex(self, vid: int) -> bool:
        return vid < self.n_grid_vertices

    # -- construction -----------------------------------------------------

    def _add_vertex(self) -> int:
        vid = self.n_vertices
        self.n_vertices += 1
        self.out_arcs[vid] = []
        self.in_arcs[vid] = []
        return vid

    def _add_arc(self, tail: int, head: int, kind: ArcKind, cost: float, layer: int) -> int:
        index = len(self.arcs)
        self.arcs.append(Arc(index, tail, head, kind, cost, layer))
        self.out_arcs[tail].append(index)
        self.in_arcs[head].append(index)
        if kind is ArcKind.WIRE and layer >= 0:
            self.wire_arc_index[(tail, head)] = index
        return index

    def _add_arc_pair(
        self, a: int, b: int, kind: ArcKind, cost: float, layer: int
    ) -> tuple[int, int]:
        fwd = self._add_arc(a, b, kind, cost, layer)
        rev = self._add_arc(b, a, kind, cost, layer)
        self.arcs[fwd] = Arc(fwd, a, b, kind, cost, layer, reverse=rev)
        self.arcs[rev] = Arc(rev, b, a, kind, cost, layer, reverse=fwd)
        return fwd, rev

    def add_virtual_vertex(self) -> int:
        """A per-net virtual vertex (supersource / supersink)."""
        return self._add_vertex()

    def add_virtual_arc(self, tail: int, head: int) -> int:
        """Zero-cost one-way virtual arc (no reverse)."""
        return self._add_arc(tail, head, ArcKind.WIRE, 0.0, -1)

    # -- queries ------------------------------------------------------------

    def wire_arc_between(self, a: int, b: int) -> int | None:
        """Index of the physical wire arc a->b if it exists (O(1))."""
        return self.wire_arc_index.get((a, b))

    def cross_arcs_at(self, vid: int) -> list[int]:
        """All non-wire (via/shape/virtual) arcs incident to ``vid``."""
        out = []
        for index in self.out_arcs[vid] + self.in_arcs[vid]:
            arc = self.arcs[index]
            if arc.kind is not ArcKind.WIRE or arc.layer == -1:
                out.append(index)
        return out


def build_graph(clip: Clip, rules: RuleConfig, wire_cost: float = 1.0,
                via_cost: float = 4.0) -> SwitchboxGraph:
    """Build the physical routing graph for a clip under a rule config."""
    g = SwitchboxGraph(clip=clip, wire_cost=wire_cost, via_cost=via_cost)
    nx, ny, nz = clip.nx, clip.ny, clip.nz
    for _ in range(nx * ny * nz):
        g._add_vertex()

    # Wire arcs along each layer's preferred direction only
    # (unidirectional routing; Section 3.2).
    for z in range(nz):
        if clip.horizontal[z]:
            for y in range(ny):
                for x in range(nx - 1):
                    g._add_arc_pair(
                        g.vid(x, y, z), g.vid(x + 1, y, z),
                        ArcKind.WIRE, wire_cost, z,
                    )
        else:
            for x in range(nx):
                for y in range(ny - 1):
                    g._add_arc_pair(
                        g.vid(x, y, z), g.vid(x, y + 1, z),
                        ArcKind.WIRE, wire_cost, z,
                    )

    # Single-via arcs on every cut layer.
    for z in range(nz - 1):
        for y in range(ny):
            for x in range(nx):
                up, down = g._add_arc_pair(
                    g.vid(x, y, z), g.vid(x, y, z + 1),
                    ArcKind.VIA, via_cost, z,
                )
                g.via_site_arcs[(x, y, z)] = (up, down)

    if rules.allow_via_shapes:
        _add_shape_vias(g)
    return g


_SHAPES = (ViaShape.BAR_H, ViaShape.BAR_V, ViaShape.SQUARE)


def _shape_cost(shape: ViaShape, via_cost: float) -> float:
    """Larger shapes are cheaper (paper: prefer them when space permits)."""
    discount = {ViaShape.BAR_H: 0.5, ViaShape.BAR_V: 0.5, ViaShape.SQUARE: 1.0}
    return via_cost - discount.get(shape, 0.0)


def _add_shape_vias(g: SwitchboxGraph) -> None:
    clip = g.clip
    for z in range(clip.nz - 1):
        for shape in _SHAPES:
            for y in range(clip.ny - shape.rows + 1):
                for x in range(clip.nx - shape.cols + 1):
                    rep = g._add_vertex()
                    lower, upper, arcs = [], [], []
                    cost = _shape_cost(shape, g.via_cost)
                    for dy in range(shape.rows):
                        for dx in range(shape.cols):
                            lo = g.vid(x + dx, y + dy, z)
                            hi = g.vid(x + dx, y + dy, z + 1)
                            lower.append(lo)
                            upper.append(hi)
                            # Half the via cost on each side so any
                            # member->rep->member traversal pays `cost`.
                            a1, a2 = g._add_arc_pair(lo, rep, ArcKind.SHAPE, cost / 2, z)
                            a3, a4 = g._add_arc_pair(rep, hi, ArcKind.SHAPE, cost / 2, z)
                            arcs.extend((a1, a2, a3, a4))
                    g.shape_instances.append(
                        ShapeViaInstance(
                            rep=rep,
                            lower_slot=z,
                            shape=shape,
                            lower_members=tuple(lower),
                            upper_members=tuple(upper),
                            arcs=tuple(arcs),
                            cost=cost,
                        )
                    )
