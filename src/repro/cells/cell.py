"""Standard-cell model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cells.pin import Pin, PinDirection
from repro.geometry import Rect


@dataclass(frozen=True)
class Cell:
    """A standard cell master.

    Geometry is in the cell-local frame: origin at the lower-left,
    footprint ``width`` x ``height`` nm.

    Attributes:
        name: master name (``NAND2X1`` ...).
        width: footprint width in nm (a multiple of the site width).
        height: footprint height in nm (the row height).
        pins: all pins, including supply pins.
        is_sequential: flip-flops/latches (used by netlist synthesis).
        drive: relative drive strength tag (X1, X2...), informational.
    """

    name: str
    width: int
    height: int
    pins: tuple[Pin, ...]
    is_sequential: bool = False
    drive: int = 1

    _by_name: dict[str, Pin] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"cell {self.name} has a degenerate footprint")
        by_name: dict[str, Pin] = {}
        for pin in self.pins:
            if pin.name in by_name:
                raise ValueError(f"duplicate pin {pin.name} in {self.name}")
            by_name[pin.name] = pin
        object.__setattr__(self, "_by_name", by_name)
        box = self.bbox()
        for pin in self.pins:
            if not box.contains_rect(pin.bbox()):
                raise ValueError(
                    f"pin {pin.name} of {self.name} extends outside the footprint"
                )

    def bbox(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    def pin(self, name: str) -> Pin:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"cell {self.name} has no pin {name!r}") from None

    def signal_pins(self) -> tuple[Pin, ...]:
        return tuple(p for p in self.pins if not p.is_supply)

    def input_pins(self) -> tuple[Pin, ...]:
        return tuple(
            p
            for p in self.signal_pins()
            if p.direction is PinDirection.INPUT
        )

    def output_pins(self) -> tuple[Pin, ...]:
        return tuple(
            p
            for p in self.signal_pins()
            if p.direction is PinDirection.OUTPUT
        )
