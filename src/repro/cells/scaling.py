"""Geometry scaling of native 7nm cells into the 28nm BEOL frame.

The paper (Section 4, including footnote 3) obtains P&R-able 7nm
enablement by:

1. scaling 7nm cell geometry up by 2.5x vertically (ratio of the 100nm
   28nm horizontal pitch to the 40nm 7nm pitch);
2. scaling widths by 2.5x, which yields cell widths in multiples of
   135nm (2.5 x 54nm placement grid), then widening each cell by
   ``scaled_width / 135`` nm so widths become multiples of the 136nm
   28nm placement grid;
3. snapping pin x locations back on-grid (multiples of 136nm), since
   the 135 -> 136 widening leaves pins off-grid.

This module reproduces that pipeline on synthetic cells so its
invariants (on-grid pins, site-multiple widths) are testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import Cell
from repro.cells.library import Library
from repro.cells.pin import Pin
from repro.geometry import Rect


@dataclass(frozen=True)
class ScalingSpec:
    """Parameters of the 7nm -> 28nm-frame scaling.

    Defaults are the paper's numbers.

    Attributes:
        y_scale_num / y_scale_den: vertical scale factor as a ratio
            (5/2 = 2.5x).
        native_site: native placement grid (54nm in 7nm).
        target_site: target placement grid (136nm in 28nm).
        target_row_height: row height after scaling (9 tracks x 100nm).
    """

    y_scale_num: int = 5
    y_scale_den: int = 2
    native_site: int = 54
    target_site: int = 136
    target_row_height: int = 900

    @property
    def intermediate_site(self) -> int:
        """Site width right after the pure 2.5x scaling (135nm)."""
        return self.native_site * self.y_scale_num // self.y_scale_den


def _scale_len(value: int, num: int, den: int) -> int:
    return value * num // den


def _snap(value: int, grid: int) -> int:
    """Snap to the nearest multiple of ``grid``."""
    return ((value + grid // 2) // grid) * grid


def scale_cell(cell: Cell, spec: ScalingSpec | None = None) -> Cell:
    """Scale one native-7nm cell into the 28nm frame per the paper.

    The returned cell has width a multiple of ``spec.target_site``,
    height ``spec.target_row_height``, and every pin's x-extent snapped
    so its center column is a multiple of the target placement grid.
    """
    if spec is None:
        spec = ScalingSpec()
    num, den = spec.y_scale_num, spec.y_scale_den

    # Step 1+2: pure 2.5x scale, then widen to a multiple of target_site.
    scaled_width = _scale_len(cell.width, num, den)
    sites = max(1, round(scaled_width / spec.intermediate_site))
    new_width = sites * spec.target_site

    y_scale_to_target = spec.target_row_height / max(1, _scale_len(cell.height, num, den))

    def scale_rect(rect: Rect) -> Rect:
        # Scale x by the per-cell stretch implied by the width fixup so
        # relative pin positions are preserved, scale y by 2.5x (then a
        # small correction onto the target row height).
        def sx(x: int) -> int:
            if cell.width == 0:
                return 0
            return round(x / cell.width * new_width)

        def sy(y: int) -> int:
            return round(_scale_len(y, num, den) * y_scale_to_target)

        return Rect(sx(rect.xlo), sy(rect.ylo), sx(rect.xhi), sy(rect.yhi))

    new_pins = []
    for pin in cell.pins:
        shapes = []
        for metal, rect in pin.shapes:
            scaled = scale_rect(rect)
            if not pin.is_supply:
                # Step 3: snap the pin column on-grid (x center must be a
                # multiple of target_site) keeping the scaled x-width.
                half_w = scaled.width // 2
                center = _snap((scaled.xlo + scaled.xhi) // 2, spec.target_site)
                center = max(half_w, min(new_width - half_w, center))
                scaled = Rect(
                    center - half_w, scaled.ylo, center + half_w, scaled.yhi
                )
            shapes.append((metal, scaled))
        new_pins.append(
            Pin(pin.name, pin.direction, tuple(shapes), is_supply=pin.is_supply)
        )

    return Cell(
        name=cell.name,
        width=new_width,
        height=spec.target_row_height,
        pins=tuple(new_pins),
        is_sequential=cell.is_sequential,
        drive=cell.drive,
    )


def scale_library(library: Library, spec: ScalingSpec | None = None) -> Library:
    """Scale every cell of a native-7nm library into the 28nm frame."""
    if spec is None:
        spec = ScalingSpec()
    scaled = Library(
        name=f"{library.name}_scaled",
        site_width=spec.target_site,
        row_height=spec.target_row_height,
    )
    for cell in library:
        scaled.add(scale_cell(cell, spec))
    return scaled
