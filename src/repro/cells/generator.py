"""Synthetic standard-cell library generation.

Pin geometry is the property the paper's experiments actually exercise
(Figure 9): how many routing-grid access points each pin offers and how
closely pins crowd each other.  The generator places each signal pin as
a vertical M1 stripe on one vertical-track column, spanning a
technology-dependent number of horizontal tracks:

=========  =================  ====================  =====================
library    pin span (tracks)  pin column stride     qualitative match
=========  =================  ====================  =====================
N28-12T    6                  2 (pins spread out)   Figure 9(a)
N28-8T     4                  2                     Figure 9(b)
N7-9T      2                  1 (pins adjacent)     Figure 9(c)
=========  =================  ====================  =====================

Supply rails (VDD top, VSS bottom) are full-width M1 stripes, as in
row-based standard cell layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import Cell
from repro.cells.library import Library
from repro.cells.pin import Pin, PinDirection
from repro.geometry import Rect
from repro.tech.presets import Technology


@dataclass(frozen=True)
class Archetype:
    """One logical cell template."""

    base_name: str
    n_inputs: int
    input_names: tuple[str, ...]
    output_name: str | None = "Y"
    is_sequential: bool = False


_ARCHETYPES: tuple[Archetype, ...] = (
    Archetype("INV", 1, ("A",)),
    Archetype("BUF", 1, ("A",)),
    Archetype("NAND2", 2, ("A", "B")),
    Archetype("NOR2", 2, ("A", "B")),
    Archetype("AND2", 2, ("A", "B")),
    Archetype("OR2", 2, ("A", "B")),
    Archetype("XOR2", 2, ("A", "B")),
    Archetype("XNOR2", 2, ("A", "B")),
    Archetype("NAND3", 3, ("A", "B", "C")),
    Archetype("NOR3", 3, ("A", "B", "C")),
    Archetype("AOI21", 3, ("A1", "A2", "B")),
    Archetype("OAI21", 3, ("A1", "A2", "B")),
    Archetype("MUX2", 3, ("A", "B", "S")),
    Archetype("DFF", 2, ("D", "CK"), "Q", True),
    Archetype("DFFR", 3, ("D", "CK", "RN"), "Q", True),
)


@dataclass(frozen=True)
class LibrarySpec:
    """Parameters controlling synthetic pin geometry for one technology.

    Attributes:
        pin_span_tracks: horizontal tracks a pin stripe crosses, i.e.
            the access-point count per pin.
        pin_column_stride: vertical-track columns between successive
            pins (1 = adjacent pins, as in the paper's 7nm cells).
        drives: drive-strength variants generated per archetype.
        rail_tracks: tracks consumed by each supply rail.
    """

    pin_span_tracks: int
    pin_column_stride: int
    drives: tuple[int, ...] = (1, 2)
    rail_tracks: int = 1

    def __post_init__(self) -> None:
        if self.pin_span_tracks < 1:
            raise ValueError("pins need at least one access point")
        if self.pin_column_stride < 1:
            raise ValueError("stride must be >= 1")


_DEFAULT_SPECS = {
    "N28-12T": LibrarySpec(pin_span_tracks=6, pin_column_stride=2),
    "N28-8T": LibrarySpec(pin_span_tracks=4, pin_column_stride=2),
    "N7-9T": LibrarySpec(pin_span_tracks=2, pin_column_stride=1),
}


def default_spec(tech: Technology) -> LibrarySpec:
    """The spec matching a paper preset (keyed by technology name)."""
    try:
        return _DEFAULT_SPECS[tech.name]
    except KeyError:
        raise KeyError(f"no default LibrarySpec for technology {tech.name!r}") from None


def _pin_stripe(
    tech: Technology, column: int, span_tracks: int, stripe_width: int
) -> Rect:
    """M1 stripe centered on vertical-track ``column``, spanning
    ``span_tracks`` horizontal tracks, vertically centered in the cell."""
    v_layer = tech.stack.layer(2)  # vertical routing layer defines columns
    h_layer = tech.stack.layer(1)
    x = v_layer.offset + column * v_layer.pitch
    n_tracks = tech.cell_tracks
    first = max(0, (n_tracks - span_tracks) // 2)
    y_lo = h_layer.offset + first * h_layer.pitch
    y_hi = h_layer.offset + (first + span_tracks - 1) * h_layer.pitch
    half = stripe_width // 2
    return Rect(x - half, y_lo - half, x + half, y_hi + half)


def make_cell(
    tech: Technology,
    spec: LibrarySpec,
    archetype: Archetype,
    drive: int,
) -> Cell:
    """Generate one synthetic cell master for the given technology."""
    n_pins = archetype.n_inputs + (1 if archetype.output_name else 0)
    # One column per pin at the given stride, plus one spare column on
    # each side; sequential cells get extra internal columns.
    columns_needed = (n_pins - 1) * spec.pin_column_stride + 1
    extra = 2 if archetype.is_sequential else 0
    width_sites = columns_needed + 2 + extra + max(0, drive - 1)
    width = width_sites * tech.site_width

    h_layer = tech.stack.layer(1)
    stripe_width = max(2, (h_layer.width // 2) * 2)  # even for centering

    pins: list[Pin] = []
    column = 1
    for input_name in archetype.input_names:
        rect = _pin_stripe(tech, column, spec.pin_span_tracks, stripe_width)
        pins.append(Pin(input_name, PinDirection.INPUT, ((1, rect),)))
        column += spec.pin_column_stride
    if archetype.output_name:
        rect = _pin_stripe(tech, column, spec.pin_span_tracks, stripe_width)
        pins.append(Pin(archetype.output_name, PinDirection.OUTPUT, ((1, rect),)))

    rail_height = spec.rail_tracks * h_layer.pitch // 2 * 2
    pins.append(
        Pin(
            "VSS",
            PinDirection.INOUT,
            ((1, Rect(0, 0, width, rail_height)),),
            is_supply=True,
        )
    )
    pins.append(
        Pin(
            "VDD",
            PinDirection.INOUT,
            ((1, Rect(0, tech.row_height - rail_height, width, tech.row_height)),),
            is_supply=True,
        )
    )

    return Cell(
        name=f"{archetype.base_name}X{drive}",
        width=width,
        height=tech.row_height,
        pins=tuple(pins),
        is_sequential=archetype.is_sequential,
        drive=drive,
    )


def generate_library(tech: Technology, spec: LibrarySpec | None = None) -> Library:
    """Generate the full synthetic library for a technology preset."""
    if spec is None:
        spec = default_spec(tech)
    library = Library(
        name=f"synth_{tech.name.lower().replace('-', '_')}",
        site_width=tech.site_width,
        row_height=tech.row_height,
    )
    for archetype in _ARCHETYPES:
        for drive in spec.drives:
            library.add(make_cell(tech, spec, archetype, drive))
    return library
