"""Pin accessibility analysis under via adjacency restrictions.

Reproduces the paper's Figure 9 argument: each signal pin needs at
least one access via from the lowest routing layer, and a via placed
on an access point blocks neighboring via sites (4 or 8 of them).  In
the 7nm library, input pins offer only two access points on adjacent
columns, so with 8 neighbors blocked "there is no way to connect two
input pins without violations" -- which is why the paper does not
evaluate RULE2/7/9/10/11 on N7-9T.

This module computes, for a cell, whether an assignment of one access
via per signal pin exists that satisfies a given
:class:`~repro.router.rules.ViaRestriction`, via exact backtracking
over the (small) per-pin access-point sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import Cell
from repro.router.rules import ViaRestriction
from repro.tech.presets import Technology


@dataclass(frozen=True)
class PinAccessReport:
    """Result of the per-cell access analysis."""

    cell_name: str
    restriction: ViaRestriction
    feasible: bool
    access_points: dict[str, tuple[tuple[int, int], ...]]
    assignment: dict[str, tuple[int, int]] | None

    @property
    def min_access_count(self) -> int:
        if not self.access_points:
            return 0
        return min(len(points) for points in self.access_points.values())


def pin_access_points(cell: Cell, tech: Technology) -> dict[str, tuple[tuple[int, int], ...]]:
    """Track-grid access points (column, row) of each signal pin.

    An access point is a (vertical-track, horizontal-track) crossing
    covered by the pin's M1 geometry, i.e. a legal V12 landing site.
    """
    v_layer = tech.stack.layer(2)
    h_layer = tech.stack.layer(1)
    out: dict[str, tuple[tuple[int, int], ...]] = {}
    for pin in cell.signal_pins():
        points: list[tuple[int, int]] = []
        for metal, rect in pin.shapes:
            if metal != 1:
                continue
            for col in v_layer.tracks_in_span(rect.xlo, rect.xhi):
                for row in h_layer.tracks_in_span(rect.ylo, rect.yhi):
                    points.append((col, row))
        out[pin.name] = tuple(sorted(set(points)))
    return out


def _conflicts(
    a: tuple[int, int], b: tuple[int, int], restriction: ViaRestriction
) -> bool:
    if a == b:
        return True
    dx, dy = b[0] - a[0], b[1] - a[1]
    return (dx, dy) in restriction.blocked_offsets()


def analyze_pin_access(
    cell: Cell, tech: Technology, restriction: ViaRestriction
) -> PinAccessReport:
    """Decide whether all signal pins can take an access via at once.

    Exact backtracking (pins ordered by fewest options first); cells
    have at most a handful of pins so this is instant.
    """
    access = pin_access_points(cell, tech)
    pins = sorted(access, key=lambda name: len(access[name]))
    if any(not access[name] for name in pins):
        return PinAccessReport(cell.name, restriction, False, access, None)

    assignment: dict[str, tuple[int, int]] = {}

    def place(index: int) -> bool:
        if index == len(pins):
            return True
        name = pins[index]
        for point in access[name]:
            if all(
                not _conflicts(point, chosen, restriction)
                for chosen in assignment.values()
            ):
                assignment[name] = point
                if place(index + 1):
                    return True
                del assignment[name]
        return False

    feasible = place(0)
    return PinAccessReport(
        cell_name=cell.name,
        restriction=restriction,
        feasible=feasible,
        access_points=access,
        assignment=dict(assignment) if feasible else None,
    )


def library_access_summary(
    library, tech: Technology, restriction: ViaRestriction
) -> dict[str, bool]:
    """Per-cell feasibility map for a whole library."""
    return {
        cell.name: analyze_pin_access(cell, tech, restriction).feasible
        for cell in library
    }
