"""Standard-cell pin model."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry import Rect


class PinDirection(enum.Enum):
    INPUT = "INPUT"
    OUTPUT = "OUTPUT"
    INOUT = "INOUT"


@dataclass(frozen=True)
class Pin:
    """A cell pin: named geometry on one or more layers (cell-local frame).

    Attributes:
        name: pin name (``A``, ``B``, ``Y``, ``CK``, ``VDD``...).
        direction: signal direction.
        shapes: tuple of ``(metal_index, Rect)`` geometry.
        is_supply: power/ground pins are kept out of signal routing.
    """

    name: str
    direction: PinDirection
    shapes: tuple[tuple[int, Rect], ...]
    is_supply: bool = False

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError(f"pin {self.name} has no geometry")
        for metal, _rect in self.shapes:
            if metal < 1:
                raise ValueError("metal index is 1-based")

    def bbox(self) -> Rect:
        """Bounding box over all shapes (ignoring layers)."""
        box = self.shapes[0][1]
        for _metal, rect in self.shapes[1:]:
            box = box.union(rect)
        return box

    def area(self) -> int:
        """Total drawn area in nm^2 (shape overlaps counted twice;
        synthetic pins do not overlap themselves)."""
        return sum(rect.area for _metal, rect in self.shapes)

    def shapes_on(self, metal: int) -> tuple[Rect, ...]:
        return tuple(rect for m, rect in self.shapes if m == metal)
