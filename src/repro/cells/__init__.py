"""Synthetic standard-cell libraries.

The paper's testbed uses foundry 28nm 8-/12-track libraries and a
prototype 7nm 9-track library from a commercial IP provider.  Those are
proprietary, so this package generates synthetic libraries whose
load-bearing property -- M1 pin geometry and the resulting access-point
counts (Figure 9) -- is modeled explicitly:

- N28-12T: tall pins spanning many horizontal tracks (many access points),
- N28-8T: shorter pins (fewer access points),
- N7-9T: two-access-point pins placed close together (the configuration
  that makes 8-neighbor via blocking infeasible in the paper).

It also implements the paper's Section 4 geometry-scaling methodology
that maps native 7nm cells into the 28nm BEOL frame (2.5x scaling with
on-grid pin snapping).
"""

from repro.cells.pin import Pin, PinDirection
from repro.cells.cell import Cell
from repro.cells.library import Library
from repro.cells.generator import LibrarySpec, generate_library
from repro.cells.scaling import ScalingSpec, scale_cell, scale_library

__all__ = [
    "Pin",
    "PinDirection",
    "Cell",
    "Library",
    "LibrarySpec",
    "generate_library",
    "ScalingSpec",
    "scale_cell",
    "scale_library",
]
