"""Standard-cell library container."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.cells.cell import Cell


@dataclass
class Library:
    """A named collection of cell masters for one technology.

    Attributes:
        name: library name (e.g. ``"synth_n28_12t"``).
        site_width: placement site width in nm.
        row_height: cell row height in nm.
    """

    name: str
    site_width: int
    row_height: int
    _cells: dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell {cell.name}")
        if cell.height != self.row_height:
            raise ValueError(
                f"cell {cell.name} height {cell.height} != row height {self.row_height}"
            )
        if cell.width % self.site_width:
            raise ValueError(
                f"cell {cell.name} width {cell.width} is not a multiple of the "
                f"{self.site_width} nm site"
            )
        self._cells[cell.name] = cell

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name} has no cell {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def names(self) -> list[str]:
        return sorted(self._cells)

    def combinational(self) -> list[Cell]:
        return [c for c in self if not c.is_sequential]

    def sequential(self) -> list[Cell]:
        return [c for c in self if c.is_sequential]
