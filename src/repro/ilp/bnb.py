"""Pure-Python best-first branch-and-bound MILP solver.

Cross-validates the HiGHS backend: same model in, same optimal
objective out (on the small instances where it is practical).  LP
relaxations are solved with ``scipy.optimize.linprog`` (HiGHS simplex),
branching is on the most fractional integer variable, and node
selection is best-bound-first, so the first incumbent that matches the
best bound is proven optimal.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.ilp.model import Model
from repro.ilp.status import Solution, SolveStatus

_INT_TOL = 1e-6


@dataclass(frozen=True)
class BnBOptions:
    """Branch-and-bound limits and warm-start inputs.

    ``incumbent`` optionally seeds the search with a known feasible
    point (variable index -> value; missing variables sit at their
    lower bound).  The point is *validated* against bounds,
    integrality, and every constraint before use -- an infeasible seed
    is silently discarded, never returned.  ``lower_bound`` is a
    trusted external bound on the optimum **in true objective space**
    (including any objective constant); when an incumbent's objective
    meets it, the search returns OPTIMAL immediately.  Soundness is
    the caller's contract: a wrong bound can only come from violating
    the restriction ordering documented in ``docs/performance.md``.

    ``should_stop`` is a cooperative cancellation hook polled at the
    same points as the time limit: when it returns True the search
    stops and hands back the best incumbent as LIMIT (never a wrong
    answer) -- the mechanism backend racing uses to stop a losing
    solver without killing its process.
    """

    max_nodes: int = 200_000
    time_limit: float | None = None
    incumbent: dict[int, float] | None = None
    lower_bound: float | None = None
    should_stop: "Callable[[], bool] | None" = None


class _LpData:
    """Immutable LP arrays shared by all nodes."""

    def __init__(self, model: Model):
        n = model.n_vars
        self.n = n
        self.cost = np.zeros(n)
        for index, coef in model.objective.coefs.items():
            self.cost[index] = coef
        self.obj_const = model.objective.const
        self.lb = np.array([v.lb for v in model.variables], dtype=float)
        self.ub = np.array([v.ub for v in model.variables], dtype=float)
        self.int_indices = [v.index for v in model.variables if v.is_integer]

        ub_rows, ub_cols, ub_data, ub_rhs = [], [], [], []
        eq_rows, eq_cols, eq_data, eq_rhs = [], [], [], []
        for con in model.constraints:
            rhs = -con.expr.const
            if con.sense == "==":
                r = len(eq_rhs)
                for index, coef in con.expr.coefs.items():
                    eq_rows.append(r)
                    eq_cols.append(index)
                    eq_data.append(coef)
                eq_rhs.append(rhs)
            else:
                sign = 1.0 if con.sense == "<=" else -1.0
                r = len(ub_rhs)
                for index, coef in con.expr.coefs.items():
                    ub_rows.append(r)
                    ub_cols.append(index)
                    ub_data.append(sign * coef)
                ub_rhs.append(sign * rhs)
        self.a_ub = (
            sparse.csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(len(ub_rhs), n))
            if ub_rhs
            else None
        )
        self.b_ub = np.array(ub_rhs) if ub_rhs else None
        self.a_eq = (
            sparse.csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(len(eq_rhs), n))
            if eq_rhs
            else None
        )
        self.b_eq = np.array(eq_rhs) if eq_rhs else None

    def solve_lp(self, lb: np.ndarray, ub: np.ndarray):
        return linprog(
            c=self.cost,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=np.column_stack([lb, ub]),
            method="highs",
        )


def _most_fractional(x: np.ndarray, int_indices: list[int]) -> int | None:
    best_index, best_frac = None, _INT_TOL
    for index in int_indices:
        frac = abs(x[index] - round(x[index]))
        if frac > best_frac:
            dist_to_half = abs(frac - 0.5)
            if best_index is None or dist_to_half < abs(
                abs(x[best_index] - round(x[best_index])) - 0.5
            ):
                best_index = index
    return best_index


def solve_with_bnb(model: Model, options: BnBOptions | None = None) -> Solution:
    """Solve a model with best-first branch-and-bound.

    Returns OPTIMAL with the proven optimum, INFEASIBLE, or LIMIT with
    the best incumbent found when a node/time budget runs out.
    """
    if options is None:
        options = BnBOptions()
    t0 = time.perf_counter()
    data = _LpData(model)
    if data.n == 0:
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=data.obj_const,
            best_bound=data.obj_const,
        )

    tie = itertools.count()  # FIFO tiebreak; ndarray bounds aren't orderable
    root = (-math.inf, next(tie), data.lb.copy(), data.ub.copy())
    heap = [root]
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf  # raw c.x, without the objective constant
    # Best proven global lower bound in raw objective space.  Best-first
    # pop order makes the heap minimum a valid global bound at any
    # point; a node popped but not yet expanded can still hide an
    # optimum as low as its own LP value, so mid-node returns take the
    # minimum of the two.  Exported on LIMIT so callers can report the
    # incumbent/bound gap, and audited against OPTIMAL claims.
    global_lower = -math.inf
    n_nodes = 0
    deadline = None if options.time_limit is None else t0 + options.time_limit
    # External bound in raw objective space (heap bounds / incumbent_obj
    # exclude obj_const; the caller's bound includes it).
    raw_bound = (
        None if options.lower_bound is None
        else options.lower_bound - data.obj_const
    )

    def bound_met(raw_obj: float) -> bool:
        return raw_bound is not None and raw_obj <= raw_bound + 1e-9

    if raw_bound is not None:
        global_lower = max(global_lower, raw_bound)

    if options.incumbent is not None and model.is_feasible(options.incumbent):
        x0 = data.lb.copy()
        for index, value in options.incumbent.items():
            x0[index] = value
        incumbent_x = x0
        incumbent_obj = float(data.cost @ x0)
        if bound_met(incumbent_obj):
            # The seed already meets a trusted bound: proven optimal
            # without a single LP relaxation.
            return _final_solution(
                model, data, incumbent_x, incumbent_obj, 0, t0,
                SolveStatus.OPTIMAL,
            )

    def expired() -> bool:
        # Cancellation shares the time-limit exit paths: both end the
        # search with an honest LIMIT, never a fabricated proof.
        if deadline is not None and time.perf_counter() > deadline:
            return True
        return options.should_stop is not None and options.should_stop()

    while heap:
        if expired():
            # Hand back the incumbent (when one exists) as LIMIT rather
            # than continuing to pop/branch past the deadline; at most
            # one LP solve can overshoot the limit.
            return _limit_solution(
                model, data, incumbent_x, incumbent_obj, n_nodes, t0,
                max(global_lower, heap[0][0]),
            )
        bound, _t, lb, ub = heapq.heappop(heap)
        if bound >= incumbent_obj - 1e-9:
            break  # best-first: nothing left can improve the incumbent
        # Best-first pop order: every remaining node's stored bound is
        # >= this one, so the popped bound is the global lower bound.
        global_lower = max(global_lower, bound)
        n_nodes += 1
        if n_nodes > options.max_nodes:
            return _limit_solution(
                model, data, incumbent_x, incumbent_obj, n_nodes, t0,
                global_lower,
            )

        lp = data.solve_lp(lb, ub)
        if lp.status == 2:  # infeasible node
            continue
        if lp.status != 0:
            return Solution(status=SolveStatus.ERROR, n_nodes=n_nodes)
        if lp.fun >= incumbent_obj - 1e-9:
            continue

        branch_index = _most_fractional(lp.x, data.int_indices)
        if branch_index is None:
            incumbent_obj = lp.fun
            incumbent_x = lp.x.copy()
            if bound_met(incumbent_obj):
                return _final_solution(
                    model, data, incumbent_x, incumbent_obj, n_nodes, t0,
                    SolveStatus.OPTIMAL,
                )
            continue

        if expired():
            # The deadline elapsed inside the LP solve: don't grow the
            # tree; report the best incumbent found so far.  The popped
            # node's LP value tightened its bound, but siblings still
            # queued may sit lower.
            return _limit_solution(
                model, data, incumbent_x, incumbent_obj, n_nodes, t0,
                max(global_lower, min(lp.fun, heap[0][0] if heap else math.inf)),
            )

        value = lp.x[branch_index]
        down_ub = ub.copy()
        down_ub[branch_index] = math.floor(value)
        if data.lb[branch_index] <= down_ub[branch_index]:
            heapq.heappush(heap, (lp.fun, next(tie), lb.copy(), down_ub))
        up_lb = lb.copy()
        up_lb[branch_index] = math.ceil(value)
        if up_lb[branch_index] <= data.ub[branch_index]:
            heapq.heappush(heap, (lp.fun, next(tie), up_lb, ub.copy()))

    if incumbent_x is None:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            n_nodes=n_nodes,
            solve_seconds=time.perf_counter() - t0,
        )
    return _final_solution(
        model, data, incumbent_x, incumbent_obj, n_nodes, t0, SolveStatus.OPTIMAL
    )


def _values_from(model: Model, x: np.ndarray) -> dict[int, float]:
    values = {}
    for v in model.variables:
        value = float(x[v.index])
        values[v.index] = round(value) if v.is_integer else value
    return values


def _final_solution(
    model, data, x, obj, n_nodes, t0, status, lower: float | None = None
) -> Solution:
    objective = obj + data.obj_const
    if status is SolveStatus.OPTIMAL:
        # The optimality proof is exhaustion (or a met external bound):
        # the proven dual bound coincides with the objective.
        best_bound: float | None = objective
    else:
        best_bound = (
            None if lower is None or not math.isfinite(lower)
            else lower + data.obj_const
        )
    return Solution(
        status=status,
        objective=objective,
        values=_values_from(model, x),
        best_bound=best_bound,
        n_nodes=n_nodes,
        solve_seconds=time.perf_counter() - t0,
    )


def _limit_solution(model, data, x, obj, n_nodes, t0, lower: float) -> Solution:
    if x is None:
        return Solution(
            status=SolveStatus.LIMIT,
            best_bound=(
                None if not math.isfinite(lower) else lower + data.obj_const
            ),
            n_nodes=n_nodes,
            solve_seconds=time.perf_counter() - t0,
        )
    return _final_solution(
        model, data, x, obj, n_nodes, t0, SolveStatus.LIMIT,
        lower=min(lower, obj),
    )
