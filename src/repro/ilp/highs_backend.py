"""MILP solving through scipy's HiGHS interface."""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.csr import CsrModel
from repro.ilp.model import Model
from repro.ilp.status import Solution, SolveStatus

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.LIMIT,      # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def _objective_const(model: "Model | CsrModel") -> float:
    if isinstance(model, CsrModel):
        return float(model.obj_const)
    return model.objective.const


def _full_point(
    model: "Model | CsrModel", partial: dict[int, float]
) -> dict[int, float]:
    """Every variable's value at a point (missing ones at lb), with
    integers snapped via Python ``round`` exactly like the object
    path always did (so values round-trip identically)."""
    values: dict[int, float] = {}
    if isinstance(model, CsrModel):
        lb, integer = model.lb, model.integer
        for j in range(model.n_vars):
            value = float(partial.get(j, float(lb[j])))
            values[j] = round(value) if integer[j] else value
        return values
    for v in model.variables:
        value = float(partial.get(v.index, v.lb))
        values[v.index] = round(value) if v.is_integer else value
    return values


def _milp_inputs(model: "Model | CsrModel"):
    """(cost, integrality, bounds, constraints) arrays for
    :func:`scipy.optimize.milp`.

    The :class:`CsrModel` path is zero-copy: the cost vector, bound
    arrays, and the CSR triplet (``data``/``indices``/``indptr``) are
    handed to scipy as the model's own buffers -- no per-row Python
    objects are walked and no matrix is re-assembled.
    """
    if isinstance(model, CsrModel):
        cost = model.obj
        integrality = model.integer.astype(np.uint8, copy=False)
        bounds = Bounds(lb=model.lb, ub=model.ub)
        constraints = []
        if model.n_rows:
            matrix = sparse.csr_matrix(
                (model.data, model.indices, model.indptr),
                shape=(model.n_rows, model.n_vars),
                copy=False,
            )
            lo, hi = model.row_bounds()
            constraints.append(LinearConstraint(matrix, lo, hi))
        return cost, integrality, bounds, constraints

    n = model.n_vars
    cost = np.zeros(n)
    for index, coef in model.objective.coefs.items():
        cost[index] = coef
    integrality = np.array(
        [1 if v.is_integer else 0 for v in model.variables], dtype=np.uint8
    )
    bounds = Bounds(
        lb=np.array([v.lb for v in model.variables]),
        ub=np.array([v.ub for v in model.variables]),
    )
    constraints = []
    if model.constraints:
        rows, cols, data = [], [], []
        lo = np.empty(len(model.constraints))
        hi = np.empty(len(model.constraints))
        for r, con in enumerate(model.constraints):
            for index, coef in con.expr.coefs.items():
                rows.append(r)
                cols.append(index)
                data.append(coef)
            rhs = -con.expr.const
            if con.sense == "<=":
                lo[r], hi[r] = -np.inf, rhs
            elif con.sense == ">=":
                lo[r], hi[r] = rhs, np.inf
            else:
                lo[r], hi[r] = rhs, rhs
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(model.constraints), n)
        )
        constraints.append(LinearConstraint(matrix, lo, hi))
    return cost, integrality, bounds, constraints


def solve_with_highs(
    model: "Model | CsrModel",
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
    warm_start: dict[int, float] | None = None,
    lower_bound: float | None = None,
    should_stop: "Callable[[], bool] | None" = None,
) -> Solution:
    """Solve a model exactly with HiGHS branch-and-cut.

    Accepts either an object :class:`Model` or a columnar
    :class:`CsrModel`; the columnar path hands the model's own
    contiguous buffers to ``scipy.optimize.milp`` zero-copy (see
    :func:`_milp_inputs`) and both paths produce identical solutions.

    ``mip_rel_gap`` is 0 by default: OptRouter requires proven-optimal
    solutions for the paper's methodology to be meaningful.

    ``warm_start`` is a candidate feasible point (variable index ->
    value).  ``scipy.optimize.milp`` cannot seed HiGHS with an
    incumbent, so the point is used two ways: it is validated with
    :meth:`Model.is_feasible` (an infeasible point is discarded, never
    returned), and when its objective meets a trusted ``lower_bound``
    (true objective space) the solve is skipped entirely and the point
    returned as OPTIMAL.  A feasible point that does not meet the
    bound falls through to a normal cold solve.

    A non-positive ``time_limit`` returns ``LIMIT`` immediately: a
    fallback chain that has already spent its wall-clock budget must
    not start another solve (HiGHS treats its own limit as advisory
    and can overshoot).  Unexpected solver exceptions are contained as
    ``ERROR`` solutions so one pathological model cannot take down a
    whole sweep.

    ``should_stop`` is a cooperative cancellation hook, checked before
    the solve starts (``scipy.optimize.milp`` offers no mid-solve
    callback, so an in-flight HiGHS solve can only be stopped by
    killing its process -- which is exactly what the racing layer's
    terminate path does).  A pre-solve cancellation returns ``LIMIT``.
    """
    if should_stop is not None and should_stop():
        return Solution(status=SolveStatus.LIMIT)
    if warm_start is not None and lower_bound is not None:
        t0 = time.perf_counter()
        if model.is_feasible(warm_start):
            objective = model.objective_value(warm_start)
            if objective <= lower_bound + 1e-6:
                return Solution(
                    status=SolveStatus.OPTIMAL,
                    objective=objective,
                    values=_full_point(model, warm_start),
                    # The caller's trusted bound IS the optimality
                    # proof for this shortcut.
                    best_bound=lower_bound,
                    solve_seconds=time.perf_counter() - t0,
                )
    if time_limit is not None and time_limit <= 0:
        return Solution(status=SolveStatus.LIMIT)
    n = model.n_vars
    obj_const = _objective_const(model)
    if n == 0:
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=obj_const,
            best_bound=obj_const,
        )

    cost, integrality, bounds, constraints = _milp_inputs(model)

    options: dict = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = time_limit

    t0 = time.perf_counter()
    try:
        result = milp(
            c=cost,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
    except (ValueError, TypeError, MemoryError):
        return Solution(
            status=SolveStatus.ERROR,
            solve_seconds=time.perf_counter() - t0,
        )
    elapsed = time.perf_counter() - t0

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    solution = Solution(status=status, solve_seconds=elapsed)
    if result.x is not None:
        values = {}
        if isinstance(model, CsrModel):
            integer = model.integer
            for j in range(n):
                value = float(result.x[j])
                values[j] = round(value) if integer[j] else value
        else:
            for v in model.variables:
                value = float(result.x[v.index])
                values[v.index] = round(value) if v.is_integer else value
        solution.values = values
        solution.objective = float(result.fun) + obj_const
        if status in (SolveStatus.OPTIMAL, SolveStatus.LIMIT):
            # Export HiGHS' proven dual bound (true objective space).
            # On OPTIMAL it must meet the objective -- the audit layer
            # (repro.verify) asserts exactly that; on LIMIT it prices
            # the incumbent/bound gap.
            dual = getattr(result, "mip_dual_bound", None)
            solution.best_bound = (
                float(dual) + obj_const
                if dual is not None
                else (
                    solution.objective
                    if status is SolveStatus.OPTIMAL
                    else None
                )
            )
    if status is SolveStatus.OPTIMAL and solution.objective is None:
        solution.objective = obj_const
        solution.best_bound = solution.objective
    solution.n_nodes = int(getattr(result, "mip_node_count", 0) or 0)
    return solution
