"""Small MILP modeling layer (variables, expressions, constraints).

Designed for building the routing ILPs of Section 3: creation of many
binary variables, sum expressions, and <= / >= / == constraints.  The
model is solver-independent; backends consume its arrays.

Example:
    >>> m = Model("demo")
    >>> x = m.binary("x")
    >>> y = m.binary("y")
    >>> m.add(x + y <= 1)
    >>> m.minimize(-2 * x - y)
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.findings import LintReport
    from repro.ilp.csr import CsrModel


class LinExpr:
    """A linear expression ``sum(coef_i * var_i) + const``."""

    __slots__ = ("coefs", "const")

    def __init__(self, coefs: dict[int, float] | None = None, const: float = 0.0):
        self.coefs: dict[int, float] = coefs if coefs is not None else {}
        self.const = const

    @staticmethod
    def _as_expr(other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return LinExpr({other.index: 1.0})
        if isinstance(other, (int, float)):
            return LinExpr(const=float(other))
        raise TypeError(f"cannot use {type(other).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coefs), self.const)

    def _iadd(self, other, sign: float) -> "LinExpr":
        expr = self._as_expr(other)
        for index, coef in expr.coefs.items():
            new = self.coefs.get(index, 0.0) + sign * coef
            if new == 0.0:
                self.coefs.pop(index, None)
            else:
                self.coefs[index] = new
        self.const += sign * expr.const
        return self

    def __add__(self, other) -> "LinExpr":
        return self.copy()._iadd(other, 1.0)

    __radd__ = __add__

    def __iadd__(self, other) -> "LinExpr":
        return self._iadd(other, 1.0)

    def __sub__(self, other) -> "LinExpr":
        return self.copy()._iadd(other, -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return self._as_expr(other) - self

    def __isub__(self, other) -> "LinExpr":
        return self._iadd(other, -1.0)

    def __mul__(self, factor) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise TypeError("only scalar multiplication is linear")
        return LinExpr(
            {i: c * factor for i, c in self.coefs.items()}, self.const * factor
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, ">=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, "==")

    __hash__ = None  # expressions are mutable

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*v{i}" for i, c in sorted(self.coefs.items()))
        return f"LinExpr({terms or '0'} + {self.const:g})"


@dataclass(frozen=True)
class Var:
    """A decision variable handle (owned by a :class:`Model`)."""

    index: int
    name: str
    lb: float
    ub: float
    is_integer: bool

    def __add__(self, other) -> LinExpr:
        return LinExpr({self.index: 1.0}) + other

    __radd__ = __add__

    def __sub__(self, other) -> LinExpr:
        return LinExpr({self.index: 1.0}) - other

    def __rsub__(self, other) -> LinExpr:
        return LinExpr._as_expr(other) - LinExpr({self.index: 1.0})

    def __mul__(self, factor) -> LinExpr:
        return LinExpr({self.index: 1.0}) * factor

    __rmul__ = __mul__

    def __neg__(self) -> LinExpr:
        return LinExpr({self.index: -1.0})

    def __le__(self, other) -> "Constraint":
        return LinExpr({self.index: 1.0}) <= other

    def __ge__(self, other) -> "Constraint":
        return LinExpr({self.index: 1.0}) >= other

    # NB: Var keeps dataclass equality/hash (needed for dict keys); use
    # `LinExpr(...) == rhs` or `var + 0 == rhs` to build an equality
    # constraint from a bare variable.


@dataclass(frozen=True)
class Constraint:
    """``expr (<=|>=|==) 0`` in normalized form."""

    expr: LinExpr
    sense: str  # "<=", ">=", "=="
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {self.sense!r}")

    def named(self, name: str) -> "Constraint":
        """A renamed copy; the expression is copied too, so mutating
        either constraint's (mutable) ``LinExpr`` never leaks into the
        other."""
        return Constraint(self.expr.copy(), self.sense, name)


@dataclass
class Model:
    """A MILP: variables, constraints, and a minimization objective."""

    name: str = "model"
    variables: list[Var] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)
    objective: LinExpr = field(default_factory=LinExpr)

    def var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
    ) -> Var:
        if lb > ub:
            raise ValueError(f"variable {name}: lb {lb} > ub {ub}")
        v = Var(index=len(self.variables), name=name, lb=lb, ub=ub, is_integer=integer)
        self.variables.append(v)
        return v

    def binary(self, name: str) -> Var:
        return self.var(name, 0.0, 1.0, integer=True)

    def integer(self, name: str, lb: float = 0.0, ub: float = float("inf")) -> Var:
        return self.var(name, lb, ub, integer=True)

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint = constraint.named(name)
        self.constraints.append(constraint)
        return constraint

    def add_all(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add(constraint)

    def minimize(self, expr: "LinExpr | Var") -> None:
        self.objective = LinExpr._as_expr(expr).copy()

    @property
    def n_vars(self) -> int:
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    @property
    def n_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    def stats(self) -> dict[str, int]:
        """Model-size summary used by the Section 4.2 analysis bench."""
        nonzeros = sum(len(c.expr.coefs) for c in self.constraints)
        return {
            "n_vars": self.n_vars,
            "n_integer_vars": self.n_integer_vars,
            "n_constraints": self.n_constraints,
            "n_nonzeros": nonzeros,
        }

    def objective_value(self, values: dict[int, float]) -> float:
        """Objective (including the constant) at a point; variables
        missing from ``values`` sit at their lower bound."""
        total = self.objective.const
        for index, coef in self.objective.coefs.items():
            total += coef * values.get(index, self.variables[index].lb)
        return total

    def is_feasible(self, values: dict[int, float], tol: float = 1e-6) -> bool:
        """True when the point satisfies bounds, integrality, and every
        constraint to within ``tol``.  Missing variables sit at their
        lower bound (which must then be finite).

        This is the warm-start gate: a seeded incumbent is only
        admitted after passing this check, so a stale or rule-invalid
        point can never become the reported solution.
        """

        def at(index: int) -> float:
            return values.get(index, self.variables[index].lb)

        for v in self.variables:
            x = at(v.index)
            if x != x or x in (float("inf"), float("-inf")):
                return False
            if x < v.lb - tol or x > v.ub + tol:
                return False
            if v.is_integer and abs(x - round(x)) > tol:
                return False
        for con in self.constraints:
            lhs = con.expr.const
            for index, coef in con.expr.coefs.items():
                lhs += coef * at(index)
            if con.sense == "<=" and lhs > tol:
                return False
            if con.sense == ">=" and lhs < -tol:
                return False
            if con.sense == "==" and abs(lhs) > tol:
                return False
        return True

    def clone(self, name: str | None = None) -> "Model":
        """A deep, independent copy (rewrite passes mutate the copy).

        Var handles are immutable and shared; constraint/objective
        expressions are copied so mutating one model never leaks into
        the other.
        """
        return Model(
            name=self.name if name is None else name,
            variables=list(self.variables),
            constraints=[
                Constraint(c.expr.copy(), c.sense, c.name)
                for c in self.constraints
            ],
            objective=self.objective.copy(),
        )

    def to_csr(self) -> "CsrModel":
        """Columnar (:class:`repro.ilp.csr.CsrModel`) form; lossless."""
        from repro.ilp.csr import CsrModel

        return CsrModel.from_model(self)

    @staticmethod
    def from_csr(csr: "CsrModel") -> "Model":
        """Object form of a columnar model; lossless."""
        return csr.to_model()

    def validate(self) -> "LintReport":
        """Run the pre-solve model linter (:mod:`repro.analysis`) on
        this model and return its report."""
        from repro.analysis.model_lint import lint_model

        return lint_model(self)
