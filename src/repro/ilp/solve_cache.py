"""Content-addressed persistent cache of MILP solve outcomes.

A solve is pure: the same model under the same solver options always
admits the same status and optimal objective.  Keying on the SHA-256
of the insertion-order-invariant serialization
(:func:`repro.ilp.lp_format.write_lp_canonical`) plus the canonical
JSON of the solver options therefore lets repeated and resumed sweeps
skip identical solves entirely -- a second ``repro evaluate
--solve-cache`` run over an unchanged clip set performs zero backend
solves.

Entries store the status, objective, and solution values **by
variable name** (indices are an insertion-order artifact; names are
what the canonical key is built from), plus the original solve/
presolve accounting so a cache hit reproduces the journaled record of
the run that populated it.  Writes are atomic (temp file + rename).

Every entry is *sealed* with a SHA-256 checksum of its canonical JSON
form (:mod:`repro.util.integrity`).  A malformed, version-mismatched,
or checksum-failing entry is moved into a ``quarantine/`` subdirectory
and reads as a miss, so a corrupted, shared, or interrupted cache
degrades to extra solves -- never to wrong results -- and the re-solve
that follows heals the entry in place.

Statuses cached: OPTIMAL, INFEASIBLE, and LIMIT (the time limit is
part of the key, so a LIMIT outcome is only replayed for the same
budget).  ERROR outcomes are never cached -- crashes are environment,
not model, properties.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.ilp.csr import CsrModel
from repro.ilp.lp_format import write_lp_canonical
from repro.ilp.model import Model
from repro.ilp.status import Solution, SolveStatus
from repro.util.integrity import seal_record, verify_seal


def _canonical_text(model: "Model | CsrModel") -> str:
    """Canonical LP text of either representation.  The two are
    byte-for-byte identical on equivalent models (a property-tested
    invariant of :meth:`CsrModel.canonical_text`), so cache keys are
    oblivious to which representation produced them."""
    if isinstance(model, CsrModel):
        return model.canonical_text()
    return write_lp_canonical(model)


def _names_by_index(model: "Model | CsrModel") -> dict[int, str]:
    if isinstance(model, CsrModel):
        return dict(enumerate(model.var_names))
    return {v.index: v.name for v in model.variables}

#: v2 added the per-entry integrity seal; unsealed v1 entries read as
#: misses (the re-solve rewrites them sealed).
ENTRY_VERSION = 2

#: Subdirectory corrupt entries are moved into (never read as hits).
QUARANTINE_DIR = "quarantine"

#: Outcomes worth persisting (see module docstring).
_CACHEABLE = (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE, SolveStatus.LIMIT)


@dataclass
class CacheEntry:
    """One cached solve outcome, in model-independent (name-keyed) form."""

    status: SolveStatus
    objective: float | None = None
    values_by_name: dict[str, float] = field(default_factory=dict)
    best_bound: float | None = None
    n_nodes: int = 0
    solve_seconds: float = 0.0
    presolve_stats: dict[str, float] = field(default_factory=dict)

    def to_solution(self, model: "Model | CsrModel") -> Solution:
        """Remap name-keyed values onto this model's variable indices."""
        if isinstance(model, CsrModel):
            by_name = model.name_to_index
        else:
            by_name = {v.name: v.index for v in model.variables}
        values = {
            by_name[name]: value
            for name, value in self.values_by_name.items()
            if name in by_name
        }
        return Solution(
            status=self.status,
            objective=self.objective,
            values=values,
            best_bound=self.best_bound,
            n_nodes=self.n_nodes,
            solve_seconds=self.solve_seconds,
        )

    def to_dict(self) -> dict:
        return seal_record({
            "v": ENTRY_VERSION,
            "status": self.status.value,
            "objective": self.objective,
            "values": self.values_by_name,
            "best_bound": self.best_bound,
            "n_nodes": self.n_nodes,
            "solve_seconds": self.solve_seconds,
            "presolve_stats": self.presolve_stats,
        })

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheEntry":
        return cls(
            status=SolveStatus(payload["status"]),
            objective=payload["objective"],
            values_by_name=dict(payload["values"]),
            best_bound=payload.get("best_bound"),
            n_nodes=int(payload.get("n_nodes", 0)),
            solve_seconds=float(payload.get("solve_seconds", 0.0)),
            presolve_stats=dict(payload.get("presolve_stats", {})),
        )


class SolveCache:
    """Sharded on-disk store of :class:`CacheEntry` objects.

    Safe to share between threads and processes: reads of a missing or
    half-written entry are misses; writes go through a same-directory
    temp file and ``os.replace``.  No locks are held (instances are
    pickled into worker processes by the supervised runner).
    """

    def __init__(self, root: "str | os.PathLike[str]"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        #: durable-write failures (ENOSPC and kin) absorbed by put();
        #: each one degrades the entry to a miss on the next run
        #: instead of crashing the sweep.
        self.write_failures = 0
        self.last_write_error: "str | None" = None

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def key_for(model: "Model | CsrModel", options: dict) -> str:
        """SHA-256 over the canonical model bytes and solver options."""
        payload = _canonical_text(model) + json.dumps(
            options, sort_keys=True, default=str
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- access -------------------------------------------------------------

    def get(
        self,
        model: "Model | CsrModel",
        options: dict,
        key: "str | None" = None,
    ) -> "CacheEntry | None":
        """Look up a solve outcome.  ``key`` is an optional precomputed
        :meth:`key_for` result, so a caller that also writes the entry
        serializes the model once, not twice."""
        path = self._path(key if key is not None else
                          self.key_for(model, options))
        entry, reason = self._read_entry(path)
        if entry is None:
            if reason is not None and reason != "absent":
                self._quarantine(path, reason)
            self.misses += 1
            return None
        self.hits += 1
        return entry

    @staticmethod
    def _read_entry(path: Path) -> "tuple[CacheEntry | None, str | None]":
        """Parse and validate one entry file; (entry, None) on success,
        (None, reason) on failure ("absent" = no file, not corruption)."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None, "absent"
        try:
            payload = json.loads(text)
        except ValueError:
            return None, "unparseable JSON (truncated or corrupted write)"
        if not isinstance(payload, dict):
            return None, "entry is not an object"
        if payload.get("v") != ENTRY_VERSION:
            return None, f"unsupported entry version {payload.get('v')!r}"
        if not verify_seal(payload):
            return None, "checksum mismatch (content does not match its seal)"
        try:
            return CacheEntry.from_dict(payload), None
        except (ValueError, KeyError, TypeError) as exc:
            return None, f"malformed entry: {type(exc).__name__}: {exc}"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside so it can never read as a hit;
        the next put() of the same key heals the slot with a fresh
        solve.  The sidecar note records why."""
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            with open(
                qdir / (path.name + ".reason"), "w", encoding="utf-8"
            ) as fh:
                fh.write(reason + "\n")
        except OSError:
            return  # racing reader already moved it; counting is best-effort
        self.quarantined += 1

    def put(
        self,
        model: "Model | CsrModel",
        options: dict,
        solution: Solution,
        presolve_stats: "dict[str, float] | None" = None,
        key: "str | None" = None,
    ) -> bool:
        """Persist a solve outcome; returns False for uncacheable ones.
        ``key`` is an optional precomputed :meth:`key_for` result."""
        if solution.status not in _CACHEABLE:
            return False
        by_index = _names_by_index(model)
        entry = CacheEntry(
            status=solution.status,
            objective=solution.objective,
            values_by_name={
                by_index[index]: value
                for index, value in solution.values.items()
                if index in by_index
            },
            best_bound=solution.best_bound,
            n_nodes=solution.n_nodes,
            solve_seconds=solution.solve_seconds,
            presolve_stats=dict(presolve_stats or {}),
        )
        path = self._path(key if key is not None else
                          self.key_for(model, options))
        # Every step of the atomic write -- mkdir, temp-file creation,
        # the write itself, the rename -- can hit a full disk; all of
        # them degrade to "entry not cached" (the next run re-solves)
        # with the temp file cleaned up, never to a crash.
        # Imported lazily: repro.exec.runner imports this module, so a
        # top-level import of the fault injector would be circular.
        from repro.exec.faults import maybe_raise_disk_full

        tmp: "str | None" = None
        try:
            maybe_raise_disk_full(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry.to_dict(), fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError as exc:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.write_failures += 1
            self.last_write_error = f"{type(exc).__name__}: {exc}"
            return False
        return True

    # -- maintenance --------------------------------------------------------

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            f
            for f in self.root.glob("*/*.json")
            if f.parent.name != QUARANTINE_DIR
        )

    def _quarantine_files(self) -> list[Path]:
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return []
        return sorted(qdir.glob("*.json"))

    def stats(self) -> dict:
        files = self._entry_files()
        return {
            "root": str(self.root),
            "entries": len(files),
            "bytes": sum(f.stat().st_size for f in files),
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": len(self._quarantine_files()),
        }

    def scan(self) -> dict:
        """Validate every entry on disk, quarantining corrupt ones.

        Returns ``{"checked": n, "valid": n, "quarantined": [(name,
        reason), ...]}`` -- the integrity audit behind ``repro audit
        --solve-cache``.
        """
        quarantined: list[tuple[str, str]] = []
        files = self._entry_files()
        for path in files:
            entry, reason = self._read_entry(path)
            if entry is None and reason not in (None, "absent"):
                assert reason is not None
                self._quarantine(path, reason)
                quarantined.append((path.name, reason))
        return {
            "checked": len(files),
            "valid": len(files) - len(quarantined),
            "quarantined": quarantined,
        }

    def evict(
        self,
        max_bytes: "int | None" = None,
        older_than_seconds: "float | None" = None,
        now: "float | None" = None,
    ) -> dict:
        """Bound the cache: LRU eviction by entry mtime.

        The shared cross-tenant tier grows without bound otherwise.
        Two independent criteria, either or both:

        - ``older_than_seconds``: drop entries not touched for that
          long (mtime is refreshed by :meth:`os.replace` on re-put, so
          it approximates last-write; an LRU by last *read* would cost
          a utime per hit, which the lock-free design avoids).
        - ``max_bytes``: after age-based eviction, drop oldest-first
          until the remaining live entries fit the budget.

        Quarantined entries are never touched -- they are evidence for
        the integrity audit, not cache capacity -- and never counted
        against ``max_bytes``.  Returns ``{"removed", "bytes_freed",
        "remaining_entries", "remaining_bytes"}``.
        """
        if now is None:
            now = time.time()
        survivors: list[tuple[float, int, Path]] = []
        removed = 0
        bytes_freed = 0
        for f in self._entry_files():
            try:
                st = f.stat()
            except OSError:
                continue  # racing eviction/quarantine; nothing to do
            age = now - st.st_mtime
            if older_than_seconds is not None and age > older_than_seconds:
                try:
                    f.unlink()
                except OSError:
                    continue
                removed += 1
                bytes_freed += st.st_size
            else:
                survivors.append((st.st_mtime, st.st_size, f))
        total = sum(size for _, size, _ in survivors)
        if max_bytes is not None and total > max_bytes:
            survivors.sort()  # oldest mtime first = least recently written
            while survivors and total > max_bytes:
                _, size, f = survivors.pop(0)
                try:
                    f.unlink()
                except OSError:
                    continue
                removed += 1
                bytes_freed += size
                total -= size
        return {
            "removed": removed,
            "bytes_freed": bytes_freed,
            "remaining_entries": len(survivors),
            "remaining_bytes": total,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        files = self._entry_files()
        for f in files:
            try:
                f.unlink()
            except OSError:
                pass
        return len(files)
