"""Columnar (CSR) model representation for the cold-path pipeline.

:class:`CsrModel` stores the same MILP a :class:`repro.ilp.model.Model`
does -- bounds, integrality, objective, and the constraint matrix --
as contiguous numpy arrays plus a name<->index table, so the hot cold
path (build -> presolve -> serialize -> hash -> solve) runs vectorized
instead of walking per-row ``Constraint`` objects.  The object
``Model`` remains the property-tested oracle: :meth:`CsrModel.to_model`
and :meth:`CsrModel.from_model` round-trip losslessly, and
:meth:`CsrModel.canonical_text` is byte-for-byte identical to
:func:`repro.ilp.lp_format.write_lp_canonical` on the equivalent
object model -- the solve-cache content address, journal seals, and
restriction proofs are therefore oblivious to which representation
produced them (tests/test_ilp_csr.py sweeps the equivalence).

Rows are normalized exactly like :class:`~repro.ilp.model.Constraint`:
``sum(data . x) + row_const (sense) 0``, i.e. the usual right-hand
side is ``-row_const``.

:class:`CooBuilder` is the emission side: the routing formulation
appends variables and rows (COO triplets) directly, optionally on top
of a frozen base section (the ``BaseFormulation`` clone-delta path),
and one :meth:`CooBuilder.freeze` call produces the final CSR arrays
with zero per-row object churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ilp.model import Constraint, LinExpr, Model, Var

#: Sense codes stored in :attr:`CsrModel.senses`.
SENSE_LE = 0
SENSE_GE = 1
SENSE_EQ = 2

_SENSE_TO_CODE = {"<=": SENSE_LE, ">=": SENSE_GE, "==": SENSE_EQ}
_CODE_TO_SENSE = {SENSE_LE: "<=", SENSE_GE: ">=", SENSE_EQ: "=="}


def _unique_by_bits(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(..., return_inverse=True)`` grouping by *bit
    pattern*, so ``-0.0`` and ``0.0`` stay distinct (their ``repr``
    differs, and the canonical text must match the object oracle's
    ``repr`` exactly; presolve rewrites can produce ``-0.0`` row
    constants)."""
    bits, inverse = np.unique(
        np.ascontiguousarray(arr, dtype=np.float64).view(np.int64),
        return_inverse=True,
    )
    return bits.view(np.float64), inverse


@dataclass(eq=False)
class CsrModel:
    """A MILP in contiguous-array form.

    Invariants: ``lb``/``ub``/``integer``/``obj`` have length
    ``n_vars``; ``indptr`` has length ``n_rows + 1``; ``senses`` and
    ``row_const`` have length ``n_rows``; ``indices``/``data`` hold the
    row-major nonzeros.  Entries with ``data == 0`` are permitted (the
    canonical serialization filters them) but builders never emit them.
    """

    name: str
    var_names: list[str]
    lb: np.ndarray
    ub: np.ndarray
    integer: np.ndarray
    obj: np.ndarray
    obj_const: float
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    senses: np.ndarray
    row_const: np.ndarray
    row_names: list[str] = field(default_factory=list)
    _name_to_index: "dict[str, int] | None" = field(
        default=None, repr=False, compare=False
    )

    # -- shape ----------------------------------------------------------------

    @property
    def n_vars(self) -> int:
        return len(self.var_names)

    @property
    def n_rows(self) -> int:
        return len(self.senses)

    @property
    def n_constraints(self) -> int:
        return self.n_rows

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def n_integer_vars(self) -> int:
        return int(np.count_nonzero(self.integer))

    @property
    def name_to_index(self) -> dict[str, int]:
        if self._name_to_index is None:
            self._name_to_index = {
                name: j for j, name in enumerate(self.var_names)
            }
        return self._name_to_index

    def stats(self) -> dict[str, int]:
        """Identical keys/values to :meth:`Model.stats`."""
        return {
            "n_vars": self.n_vars,
            "n_integer_vars": self.n_integer_vars,
            "n_constraints": self.n_rows,
            "n_nonzeros": int(np.count_nonzero(self.data)),
        }

    # -- conversion -----------------------------------------------------------

    @classmethod
    def from_model(cls, model: Model) -> "CsrModel":
        """Columnar form of an object model (lossless; exact floats)."""
        n_rows = len(model.constraints)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        cols: list[int] = []
        vals: list[float] = []
        senses = np.empty(n_rows, dtype=np.int8)
        row_const = np.empty(n_rows, dtype=np.float64)
        row_names: list[str] = []
        for r, con in enumerate(model.constraints):
            cols.extend(con.expr.coefs.keys())
            vals.extend(con.expr.coefs.values())
            indptr[r + 1] = len(cols)
            senses[r] = _SENSE_TO_CODE[con.sense]
            row_const[r] = con.expr.const
            row_names.append(con.name)
        obj = np.zeros(len(model.variables), dtype=np.float64)
        for j, coef in model.objective.coefs.items():
            obj[j] = coef
        return cls(
            name=model.name,
            var_names=[v.name for v in model.variables],
            lb=np.array([v.lb for v in model.variables], dtype=np.float64),
            ub=np.array([v.ub for v in model.variables], dtype=np.float64),
            integer=np.array(
                [v.is_integer for v in model.variables], dtype=bool
            ),
            obj=obj,
            obj_const=model.objective.const,
            indptr=indptr,
            indices=np.asarray(cols, dtype=np.int64),
            data=np.asarray(vals, dtype=np.float64),
            senses=senses,
            row_const=row_const,
            row_names=row_names,
        )

    def to_model(self) -> Model:
        """Object form (the oracle representation); lossless."""
        model = Model(name=self.name)
        lb = self.lb.tolist()
        ub = self.ub.tolist()
        integer = self.integer.tolist()
        for j, name in enumerate(self.var_names):
            model.variables.append(
                Var(
                    index=j,
                    name=name,
                    lb=lb[j],
                    ub=ub[j],
                    is_integer=integer[j],
                )
            )
        indices = self.indices.tolist()
        data = self.data.tolist()
        indptr = self.indptr.tolist()
        consts = self.row_const.tolist()
        senses = self.senses.tolist()
        names = self.row_names or [""] * self.n_rows
        for r in range(self.n_rows):
            start, end = indptr[r], indptr[r + 1]
            coefs = dict(zip(indices[start:end], data[start:end]))
            model.constraints.append(
                Constraint(
                    LinExpr(coefs, consts[r]),
                    _CODE_TO_SENSE[senses[r]],
                    names[r],
                )
            )
        nz = np.flatnonzero(self.obj)
        model.objective = LinExpr(
            dict(zip(nz.tolist(), self.obj[nz].tolist())), self.obj_const
        )
        return model

    # -- canonical serialization ---------------------------------------------

    def canonical_text(self) -> str:
        """Insertion-order-invariant serialization over the buffers.

        Byte-for-byte identical to
        ``write_lp_canonical(self.to_model())`` -- proven by the
        hypothesis sweep in ``tests/test_ilp_csr.py`` -- so cache keys,
        journal seals, and restriction proofs computed from either
        representation agree.
        """
        lines = ["canonical-lp v1"]
        names = self.var_names
        # Objective: name-sorted nonzero terms, exact float repr.
        nz = np.flatnonzero(self.obj)
        obj_terms = sorted(
            (names[j], coef)
            for j, coef in zip(nz.tolist(), self.obj[nz].tolist())
        )
        body = " ".join(f"{coef!r} {name}" for name, coef in obj_terms)
        lines.append(f"min {body} | {self.obj_const!r}")

        # Rows: entries sorted by (row, variable name) in one lexsort,
        # then rendered row by row and content-sorted like the oracle.
        # Coefficient values repeat heavily (mostly +-1), so ``repr``
        # -- the expensive shortest-float algorithm -- runs once per
        # unique value, not once per nonzero.
        if self.n_rows:
            live = np.flatnonzero(self.data)
            entry_rows = np.repeat(
                np.arange(self.n_rows, dtype=np.int64),
                np.diff(self.indptr),
            )[live]
            # Sort by (row, name) with an integer key: rank[j] is the
            # lexicographic rank of variable j's name.
            name_order = sorted(range(len(names)), key=names.__getitem__)
            rank = np.empty(len(names), dtype=np.int64)
            rank[name_order] = np.arange(len(names), dtype=np.int64)
            entry_cols = self.indices[live]
            order = np.lexsort((rank[entry_cols], entry_rows))
            sorted_rows = entry_rows[order].tolist()
            sorted_names = [names[j] for j in entry_cols[order].tolist()]
            uniq, inverse = _unique_by_bits(self.data[live][order])
            coef_reprs = [f"{c!r} " for c in uniq.tolist()]
            terms = [
                coef_reprs[k] + name
                for k, name in zip(inverse.tolist(), sorted_names)
            ]
            # Group the globally-sorted entries back into rows.
            starts = np.searchsorted(
                sorted_rows, np.arange(self.n_rows + 1)
            ).tolist()
            uniq_c, inv_c = _unique_by_bits(self.row_const)
            const_reprs = [f" | {c!r}" for c in uniq_c.tolist()]
            senses = self.senses.tolist()
            rows = sorted(
                _CODE_TO_SENSE[senses[r]]
                + " "
                + " ".join(terms[starts[r]:starts[r + 1]])
                + const_reprs[k]
                for r, k in enumerate(inv_c.tolist())
            )
            lines.extend(rows)
        lines.append("vars")
        uniq_lb, inv_lb = _unique_by_bits(self.lb)
        uniq_ub, inv_ub = _unique_by_bits(self.ub)
        lb_reprs = [f" {c!r}" for c in uniq_lb.tolist()]
        ub_reprs = [f" {c!r}" for c in uniq_ub.tolist()]
        lines.extend(
            sorted(
                name + lb_reprs[i] + ub_reprs[j] + (" i" if is_int else " c")
                for name, i, j, is_int in zip(
                    names,
                    inv_lb.tolist(),
                    inv_ub.tolist(),
                    self.integer.tolist(),
                )
            )
        )
        return "\n".join(lines) + "\n"

    def canonical_bytes(self) -> bytes:
        return self.canonical_text().encode("utf-8")

    # -- evaluation -----------------------------------------------------------

    def row_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (lo, hi) activity bounds for ``A x in [lo, hi]``
        form (the :func:`scipy.optimize.milp` constraint encoding)."""
        rhs = -self.row_const
        lo = np.where(self.senses != SENSE_LE, rhs, -np.inf)
        hi = np.where(self.senses != SENSE_GE, rhs, np.inf)
        return lo, hi

    def _point(self, values: dict[int, float]) -> np.ndarray:
        x = self.lb.copy()
        if values:
            js = np.fromiter(values.keys(), dtype=np.int64, count=len(values))
            vs = np.fromiter(
                values.values(), dtype=np.float64, count=len(values)
            )
            x[js] = vs
        return x

    def objective_value(self, values: dict[int, float]) -> float:
        """Objective at a point; missing variables sit at lb (mirrors
        :meth:`Model.objective_value`)."""
        x = self._point(values)
        return float(self.obj @ x) + self.obj_const

    def is_feasible(self, values: dict[int, float], tol: float = 1e-6) -> bool:
        """Vectorized twin of :meth:`Model.is_feasible`."""
        x = self._point(values)
        if not np.all(np.isfinite(x)):
            return False
        if np.any(x < self.lb - tol) or np.any(x > self.ub + tol):
            return False
        if np.any(np.abs(x[self.integer] - np.round(x[self.integer])) > tol):
            return False
        if self.n_rows:
            lhs = np.add.reduceat(
                self.data * x[self.indices],
                self.indptr[:-1],
                dtype=np.float64,
            )
            lhs[np.diff(self.indptr) == 0] = 0.0
            lhs = lhs + self.row_const
            if np.any((self.senses == SENSE_LE) & (lhs > tol)):
                return False
            if np.any((self.senses == SENSE_GE) & (lhs < -tol)):
                return False
            if np.any((self.senses == SENSE_EQ) & (np.abs(lhs) > tol)):
                return False
        return True

    def validate(self):
        """Run the pre-solve model linter on this model (API parity
        with :meth:`Model.validate`; the linter accepts the columnar
        form directly)."""
        from repro.analysis.model_lint import lint_model

        return lint_model(self)


class CooBuilder:
    """Append-only COO accumulator the formulation emits into.

    Mirrors the :class:`Model` construction API the builder needs
    (``var``/``binary``/``integer`` returning :class:`Var` handles) but
    stores rows as flat index/coefficient arrays; :meth:`freeze` makes
    one CSR construction at the end.  With ``base`` set, new variables
    and rows extend the frozen base section without copying it -- the
    ``BaseFormulation`` clone-delta path.
    """

    __slots__ = (
        "base",
        "n_base_vars",
        "var_names",
        "lb",
        "ub",
        "integer",
        "cols",
        "vals",
        "rowptr",
        "senses",
        "row_const",
        "row_names",
        "obj_cols",
        "obj_vals",
        "obj_const",
    )

    def __init__(self, base: "CsrModel | None" = None):
        self.base = base
        self.n_base_vars = base.n_vars if base is not None else 0
        self.var_names: list[str] = []
        self.lb: list[float] = []
        self.ub: list[float] = []
        self.integer: list[bool] = []
        self.cols: list[int] = []
        self.vals: list[float] = []
        self.rowptr: list[int] = [0]
        self.senses: list[int] = []
        self.row_const: list[float] = []
        self.row_names: list[str] = []
        self.obj_cols: list[int] = []
        self.obj_vals: list[float] = []
        self.obj_const: float = 0.0

    # -- variables ------------------------------------------------------------

    def var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
    ) -> Var:
        if lb > ub:
            raise ValueError(f"variable {name}: lb {lb} > ub {ub}")
        index = self.n_base_vars + len(self.var_names)
        self.var_names.append(name)
        self.lb.append(lb)
        self.ub.append(ub)
        self.integer.append(integer)
        return Var(index=index, name=name, lb=lb, ub=ub, is_integer=integer)

    def binary(self, name: str) -> Var:
        return self.var(name, 0.0, 1.0, integer=True)

    def integer_var(
        self, name: str, lb: float = 0.0, ub: float = float("inf")
    ) -> Var:
        return self.var(name, lb, ub, integer=True)

    # -- rows -----------------------------------------------------------------

    def _emit(
        self, expr: LinExpr, sense: int, rhs: float, name: str
    ) -> None:
        for j, coef in expr.coefs.items():
            if coef != 0.0:
                self.cols.append(j)
                self.vals.append(coef)
        self.rowptr.append(len(self.cols))
        self.senses.append(sense)
        # Same normalization as ``Constraint(expr - rhs, sense)``.
        self.row_const.append(expr.const - rhs)
        self.row_names.append(name)

    def le(self, expr: "LinExpr | Var", rhs: float = 0.0, name: str = "") -> None:
        self._emit(LinExpr._as_expr(expr), SENSE_LE, rhs, name)

    def ge(self, expr: "LinExpr | Var", rhs: float = 0.0, name: str = "") -> None:
        self._emit(LinExpr._as_expr(expr), SENSE_GE, rhs, name)

    def eq(self, expr: "LinExpr | Var", rhs: float = 0.0, name: str = "") -> None:
        self._emit(LinExpr._as_expr(expr), SENSE_EQ, rhs, name)

    def minimize(self, expr: "LinExpr | Var") -> None:
        as_expr = LinExpr._as_expr(expr)
        self.obj_cols = [j for j, c in as_expr.coefs.items() if c != 0.0]
        self.obj_vals = [c for c in as_expr.coefs.values() if c != 0.0]
        self.obj_const = as_expr.const

    # -- freeze ---------------------------------------------------------------

    def freeze(self, name: str) -> CsrModel:
        """One CSR construction over base + appended sections."""
        own_lb = np.asarray(self.lb, dtype=np.float64)
        own_ub = np.asarray(self.ub, dtype=np.float64)
        own_int = np.asarray(self.integer, dtype=bool)
        own_indices = np.asarray(self.cols, dtype=np.int64)
        own_data = np.asarray(self.vals, dtype=np.float64)
        own_indptr = np.asarray(self.rowptr, dtype=np.int64)
        own_senses = np.asarray(self.senses, dtype=np.int8)
        own_const = np.asarray(self.row_const, dtype=np.float64)

        if self.base is None:
            n_vars = len(self.var_names)
            obj = np.zeros(n_vars, dtype=np.float64)
            if self.obj_cols:
                obj[np.asarray(self.obj_cols, dtype=np.int64)] = np.asarray(
                    self.obj_vals, dtype=np.float64
                )
            return CsrModel(
                name=name,
                var_names=list(self.var_names),
                lb=own_lb,
                ub=own_ub,
                integer=own_int,
                obj=obj,
                obj_const=self.obj_const,
                indptr=own_indptr,
                indices=own_indices,
                data=own_data,
                senses=own_senses,
                row_const=own_const,
                row_names=list(self.row_names),
            )

        base = self.base
        n_vars = base.n_vars + len(self.var_names)
        obj = np.zeros(n_vars, dtype=np.float64)
        obj[: base.n_vars] = base.obj
        if self.obj_cols:
            obj[np.asarray(self.obj_cols, dtype=np.int64)] += np.asarray(
                self.obj_vals, dtype=np.float64
            )
        indptr = np.concatenate(
            (base.indptr, base.indptr[-1] + own_indptr[1:])
        )
        return CsrModel(
            name=name,
            var_names=base.var_names + self.var_names,
            lb=np.concatenate((base.lb, own_lb)),
            ub=np.concatenate((base.ub, own_ub)),
            integer=np.concatenate((base.integer, own_int)),
            obj=obj,
            obj_const=base.obj_const + self.obj_const,
            indptr=indptr,
            indices=np.concatenate((base.indices, own_indices)),
            data=np.concatenate((base.data, own_data)),
            senses=np.concatenate((base.senses, own_senses)),
            row_const=np.concatenate((base.row_const, own_const)),
            row_names=(base.row_names or [""] * base.n_rows)
            + self.row_names,
        )
