"""CPLEX LP-format export of models.

The paper's OptRouter hands its ILPs to ILOG CPLEX; exporting our
models in the LP interchange format keeps that path open (any LP-file
solver -- CPLEX, Gurobi, HiGHS CLI, SCIP -- can consume the output)
and doubles as a human-readable model dump for debugging.

Output is byte-deterministic: terms are emitted in variable-index
order, constraints in sorted (name, position) order, and the Bounds /
Binaries / Generals sections in sorted variable-name order.  Two
builds of the same model therefore serialize identically, which makes
presolve traces and checkpoint journals diffable.

:func:`write_lp_canonical` goes further and is *insertion-order
invariant*: terms are keyed by variable name (not index), rows are
content-sorted with positional auto-names dropped, floats use exact
``repr``, and the model name is excluded.  Two semantically equal
models built in any variable/constraint order serialize to the same
bytes -- the content-address for the persistent solve cache
(:mod:`repro.ilp.solve_cache`).
"""

from __future__ import annotations

from repro.ilp.model import LinExpr, Model


def _term(coef: float, name: str, first: bool) -> str:
    sign = "" if (first and coef >= 0) else ("+ " if coef >= 0 else "- ")
    magnitude = abs(coef)
    if magnitude == 1.0:
        return f"{sign}{name}"
    return f"{sign}{magnitude:g} {name}"


def _expr_text(model: Model, expr: LinExpr) -> str:
    if not expr.coefs:
        return "0"
    parts = []
    for index in sorted(expr.coefs):
        coef = expr.coefs[index]
        parts.append(_term(coef, model.variables[index].name, first=not parts))
    return " ".join(parts)


def write_lp(model: Model) -> str:
    """Serialize a model in CPLEX LP format (minimization)."""
    lines = [f"\\ Problem: {model.name}", "Minimize", " obj:"]
    lines[-1] += " " + _expr_text(model, model.objective)
    if model.objective.const:
        lines.append(f"\\ constant offset {model.objective.const:g} not encoded")

    lines.append("Subject To")
    named = sorted(
        (con.name or f"c{index}", index, con)
        for index, con in enumerate(model.constraints)
    )
    for name, _, con in named:
        rhs = -con.expr.const
        op = {"<=": "<=", ">=": ">=", "==": "="}[con.sense]
        lines.append(f" {name}: {_expr_text(model, con.expr)} {op} {rhs:g}")

    bounded = sorted(
        (
            v for v in model.variables
            if not (v.is_integer and v.lb == 0.0 and v.ub == 1.0)
        ),
        key=lambda v: v.name,
    )
    if bounded:
        lines.append("Bounds")
        for v in bounded:
            ub = "+inf" if v.ub == float("inf") else f"{v.ub:g}"
            lines.append(f" {v.lb:g} <= {v.name} <= {ub}")

    binaries = sorted(
        v.name for v in model.variables
        if v.is_integer and v.ub == 1.0 and v.lb == 0.0
    )
    generals = sorted(
        v.name for v in model.variables
        if v.is_integer and not (v.ub == 1.0 and v.lb == 0.0)
    )
    if binaries:
        lines.append("Binaries")
        lines.append(" " + " ".join(binaries))
    if generals:
        lines.append("Generals")
        lines.append(" " + " ".join(generals))
    lines.append("End")
    return "\n".join(lines) + "\n"


def _canonical_expr(model: Model, expr: LinExpr) -> str:
    """Name-keyed, exact-float rendering of a linear expression."""
    terms = sorted(
        (model.variables[index].name, coef)
        for index, coef in expr.coefs.items()
        if coef != 0.0
    )
    body = " ".join(f"{coef!r} {name}" for name, coef in terms)
    return f"{body} | {expr.const!r}"


def write_lp_canonical(model: Model) -> str:
    """Insertion-order-invariant serialization for content addressing.

    Two models with the same variables (by name/bounds/integrality),
    the same constraint *set*, and the same objective produce
    byte-identical output regardless of the order anything was added
    in.  Any coefficient, bound, sense, rhs, or integrality change
    produces different output.  Constraint names are dropped (the
    default positional ``c{i}`` names would leak insertion order);
    the model name is dropped too.  Not valid LP-file syntax -- this
    is a cache key, not an interchange format.
    """
    lines = ["canonical-lp v1"]
    lines.append("min " + _canonical_expr(model, model.objective))
    rows = sorted(
        f"{con.sense} {_canonical_expr(model, con.expr)}"
        for con in model.constraints
    )
    lines.extend(rows)
    lines.append("vars")
    lines.extend(
        sorted(
            f"{v.name} {v.lb!r} {v.ub!r} {'i' if v.is_integer else 'c'}"
            for v in model.variables
        )
    )
    return "\n".join(lines) + "\n"
