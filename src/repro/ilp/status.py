"""Solver outcome types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"  # node/time limit hit before proving optimality
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        return self is SolveStatus.OPTIMAL


@dataclass
class Solution:
    """Result of a MILP solve.

    ``values`` maps variable ids to (rounded, for integer variables)
    values; empty unless a feasible point was found.  ``best_bound`` is
    the proven dual bound when the backend reports one.
    """

    status: SolveStatus
    objective: float | None = None
    values: dict[int, float] = field(default_factory=dict)
    best_bound: float | None = None
    n_nodes: int = 0
    solve_seconds: float = 0.0

    def value(self, var) -> float:
        """Value of a :class:`~repro.ilp.model.Var` in this solution."""
        return self.values[var.index]
