"""Self-contained mixed-integer linear programming layer.

The paper solves its routing ILPs with ILOG CPLEX; this package
provides the equivalent capability without external solvers:

- :mod:`repro.ilp.model` -- a small modeling API (variables, linear
  expressions, constraints, objective) in the spirit of PuLP;
- :mod:`repro.ilp.highs_backend` -- exact MILP solving through
  ``scipy.optimize.milp`` (the HiGHS branch-and-cut solver);
- :mod:`repro.ilp.bnb` -- a pure-Python best-first branch-and-bound
  over HiGHS LP relaxations, used to cross-validate the primary
  backend on small instances.

Both backends are exact, so OptRouter's optimality claim carries over.
"""

from repro.ilp.model import Constraint, LinExpr, Model, Var
from repro.ilp.status import Solution, SolveStatus
from repro.ilp.highs_backend import solve_with_highs
from repro.ilp.bnb import BnBOptions, solve_with_bnb
from repro.ilp.lp_format import write_lp, write_lp_canonical
from repro.ilp.solve_cache import CacheEntry, SolveCache

__all__ = [
    "Model",
    "Var",
    "LinExpr",
    "Constraint",
    "Solution",
    "SolveStatus",
    "solve_with_highs",
    "solve_with_bnb",
    "BnBOptions",
    "write_lp",
    "write_lp_canonical",
    "CacheEntry",
    "SolveCache",
]
