"""LEF subset writer."""

from __future__ import annotations

from repro.cells.library import Library
from repro.tech.presets import Technology

_DBU = 1000  # database units per micron; 1 dbu = 1 nm


def _um(value_nm: int) -> str:
    """Format a nm value as LEF microns without float noise."""
    text = f"{value_nm / _DBU:.3f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def write_lef(library: Library, tech: Technology | None = None) -> str:
    """Serialize a library (and optionally its layer stack) as LEF text."""
    lines: list[str] = []
    lines.append("VERSION 5.8 ;")
    lines.append("BUSBITCHARS \"[]\" ;")
    lines.append("DIVIDERCHAR \"/\" ;")
    lines.append(f"UNITS DATABASE MICRONS {_DBU} ; END UNITS")
    if tech is not None:
        for layer in tech.stack.layers:
            lines.append(f"LAYER {layer.name}")
            lines.append("  TYPE ROUTING ;")
            direction = "HORIZONTAL" if layer.direction.is_horizontal else "VERTICAL"
            lines.append(f"  DIRECTION {direction} ;")
            lines.append(f"  PITCH {_um(layer.pitch)} ;")
            lines.append(f"  WIDTH {_um(layer.width)} ;")
            lines.append(f"END {layer.name}")
    lines.append(
        f"SITE core CLASS CORE ; SIZE {_um(library.site_width)} BY "
        f"{_um(library.row_height)} ; END core"
    )
    for cell in sorted(library, key=lambda c: c.name):
        lines.append(f"MACRO {cell.name}")
        lines.append("  CLASS CORE ;")
        lines.append("  ORIGIN 0 0 ;")
        lines.append(f"  SIZE {_um(cell.width)} BY {_um(cell.height)} ;")
        lines.append("  SITE core ;")
        for pin in cell.pins:
            lines.append(f"  PIN {pin.name}")
            lines.append(f"    DIRECTION {pin.direction.value} ;")
            if pin.is_supply:
                use = "POWER" if pin.name.upper() in ("VDD", "VCC") else "GROUND"
                lines.append(f"    USE {use} ;")
            lines.append("    PORT")
            current_metal = None
            for metal, rect in pin.shapes:
                if metal != current_metal:
                    lines.append(f"      LAYER M{metal} ;")
                    current_metal = metal
                lines.append(
                    f"        RECT {_um(rect.xlo)} {_um(rect.ylo)} "
                    f"{_um(rect.xhi)} {_um(rect.yhi)} ;"
                )
            lines.append("    END")
            lines.append(f"  END {pin.name}")
        lines.append(f"END {cell.name}")
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"
