"""Mini LEF/DEF reader and writer.

The paper interfaces to designs through LEF/DEF (via OpenAccess).  This
package implements a compact, self-consistent subset sufficient for the
reproduction flow:

- LEF: units, site, layers, macros with SIZE and PIN/PORT RECT geometry;
- DEF: units, die area, placed components, nets with ROUTED wiring
  (segments and vias).

All distances are nanometers internally; files use DBU = 1000 per
micron, so DEF integers are nm and LEF microns convert exactly.
"""

from repro.lefdef.lef_writer import write_lef
from repro.lefdef.lef_parser import parse_lef
from repro.lefdef.def_writer import write_def
from repro.lefdef.def_parser import parse_def

__all__ = ["write_lef", "parse_lef", "write_def", "parse_def"]
