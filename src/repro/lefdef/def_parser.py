"""DEF subset parser (round-trips the writer's output)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cells.library import Library
from repro.geometry import Orientation, Point, Rect, Segment
from repro.netlist.design import Design, Term
from repro.route.wiring import NetRoute, WireSegment, WireVia


class DefParseError(ValueError):
    """Raised on malformed DEF input."""


@dataclass
class DefContents:
    """Parse result: the rebuilt design plus any routed wiring."""

    design: Design
    routes: dict[str, NetRoute] = field(default_factory=dict)


def _tokens(text: str) -> list[str]:
    out: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        out.extend(line.split())
    return out


def parse_def(text: str, library: Library) -> DefContents:
    """Parse DEF text against a library into a design + routes."""
    toks = _tokens(text)
    i, n = 0, len(toks)
    design: Design | None = None
    routes: dict[str, NetRoute] = {}

    while i < n:
        tok = toks[i]
        if tok == "DESIGN" and design is None:
            design = Design(name=toks[i + 1], library=library)
            i += 3
        elif tok == "DIEAREA":
            if design is None:
                raise DefParseError("DIEAREA before DESIGN")
            design.die = Rect(
                int(toks[i + 2]), int(toks[i + 3]),
                int(toks[i + 6]), int(toks[i + 7]),
            )
            i += 10
        elif tok == "COMPONENTS":
            if design is None:
                raise DefParseError("COMPONENTS before DESIGN")
            i += 3
            while toks[i] != "END":
                if toks[i] != "-":
                    raise DefParseError(f"expected '-' in COMPONENTS, got {toks[i]!r}")
                inst = design.add_instance(toks[i + 1], toks[i + 2])
                i += 3
                if toks[i] == "+":
                    if toks[i + 1] != "PLACED":
                        raise DefParseError(f"unsupported component option {toks[i + 1]!r}")
                    inst.location = Point(int(toks[i + 3]), int(toks[i + 4]))
                    inst.orientation = Orientation(toks[i + 6])
                    i += 7
                if toks[i] != ";":
                    raise DefParseError("component not terminated by ';'")
                i += 1
            i += 2  # END COMPONENTS
        elif tok == "NETS":
            if design is None:
                raise DefParseError("NETS before DESIGN")
            i += 3
            while toks[i] != "END":
                if toks[i] != "-":
                    raise DefParseError(f"expected '-' in NETS, got {toks[i]!r}")
                net_name = toks[i + 1]
                i += 2
                terms: list[Term] = []
                while toks[i] == "(":
                    terms.append(Term(toks[i + 1], toks[i + 2]))
                    i += 4
                design.add_net(net_name, terms)
                if toks[i] == "+":
                    if toks[i + 1] != "ROUTED":
                        raise DefParseError(f"unsupported net option {toks[i + 1]!r}")
                    i += 2
                    route = NetRoute(net=net_name)
                    while True:
                        metal = int(toks[i].lstrip("M"))
                        a = Point(int(toks[i + 2]), int(toks[i + 3]))
                        i += 5
                        if toks[i] == "(":
                            b = Point(int(toks[i + 1]), int(toks[i + 2]))
                            route.segments.append(
                                WireSegment(metal, Segment(a, b))
                            )
                            i += 4
                        else:
                            route.vias.append(
                                WireVia(lower=metal, at=a, via_name=toks[i])
                            )
                            i += 1
                        if toks[i] == "NEW":
                            i += 1
                            continue
                        break
                    routes[net_name] = route
                if toks[i] != ";":
                    raise DefParseError(f"net {net_name} not terminated by ';'")
                i += 1
            i += 2  # END NETS
        else:
            i += 1

    if design is None:
        raise DefParseError("no DESIGN statement found")
    return DefContents(design=design, routes=routes)
