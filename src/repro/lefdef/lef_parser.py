"""LEF subset parser (round-trips the writer's output)."""

from __future__ import annotations

from repro.cells.cell import Cell
from repro.cells.library import Library
from repro.cells.pin import Pin, PinDirection
from repro.geometry import Rect

_DBU = 1000


class LefParseError(ValueError):
    """Raised on malformed LEF input."""


def _tokens(text: str) -> list[str]:
    out: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0]
        out.extend(line.split())
    return out


def _nm(token: str) -> int:
    try:
        return round(float(token) * _DBU)
    except ValueError:
        raise LefParseError(f"expected a number, got {token!r}") from None


def parse_lef(text: str, library_name: str = "parsed") -> Library:
    """Parse LEF text into a :class:`Library`.

    Only the writer's subset is understood: UNITS, SITE, LAYER blocks
    (skipped -- layer data belongs to the Technology), and MACRO blocks
    with SIZE and PIN/PORT/RECT.
    """
    toks = _tokens(text)
    i = 0
    site_width: int | None = None
    row_height: int | None = None
    cells: list[Cell] = []

    def expect_semi(j: int) -> int:
        if toks[j] != ";":
            raise LefParseError(f"expected ';' near token {j}: {toks[j - 2:j + 2]}")
        return j + 1

    n = len(toks)
    while i < n:
        tok = toks[i]
        if tok == "SITE":
            # SITE core CLASS CORE ; SIZE w BY h ; END core
            j = i + 2
            while toks[j] != "SIZE":
                j += 1
            site_width = _nm(toks[j + 1])
            row_height = _nm(toks[j + 3])
            while toks[j] != "END":
                j += 1
            i = j + 2
        elif tok == "MACRO":
            name = toks[i + 1]
            i += 2
            width = height = None
            pins: list[Pin] = []
            while toks[i] != "END" or toks[i + 1] != name:
                if toks[i] == "SIZE":
                    width = _nm(toks[i + 1])
                    height = _nm(toks[i + 3])
                    i = expect_semi(i + 4)
                elif toks[i] == "PIN":
                    pin_name = toks[i + 1]
                    i += 2
                    direction = PinDirection.INOUT
                    is_supply = False
                    shapes: list[tuple[int, Rect]] = []
                    while toks[i] != "END" or toks[i + 1] != pin_name:
                        if toks[i] == "DIRECTION":
                            direction = PinDirection(toks[i + 1])
                            i = expect_semi(i + 2)
                        elif toks[i] == "USE":
                            is_supply = toks[i + 1] in ("POWER", "GROUND")
                            i = expect_semi(i + 2)
                        elif toks[i] == "PORT":
                            i += 1
                            metal = None
                            while toks[i] != "END":
                                if toks[i] == "LAYER":
                                    metal = int(toks[i + 1].lstrip("M"))
                                    i = expect_semi(i + 2)
                                elif toks[i] == "RECT":
                                    if metal is None:
                                        raise LefParseError("RECT before LAYER")
                                    rect = Rect(
                                        _nm(toks[i + 1]),
                                        _nm(toks[i + 2]),
                                        _nm(toks[i + 3]),
                                        _nm(toks[i + 4]),
                                    )
                                    shapes.append((metal, rect))
                                    i = expect_semi(i + 5)
                                else:
                                    raise LefParseError(f"unexpected token in PORT: {toks[i]!r}")
                            i += 1  # consume PORT's END
                        else:
                            raise LefParseError(f"unexpected token in PIN: {toks[i]!r}")
                    i += 2  # END <pin>
                    pins.append(Pin(pin_name, direction, tuple(shapes), is_supply=is_supply))
                else:
                    # Skip "CLASS CORE ;", "ORIGIN 0 0 ;", "SITE core ;" etc.
                    while toks[i] != ";":
                        i += 1
                    i += 1
            i += 2  # END <macro>
            if width is None or height is None:
                raise LefParseError(f"macro {name} missing SIZE")
            cells.append(Cell(name=name, width=width, height=height, pins=tuple(pins)))
        else:
            i += 1

    if site_width is None or row_height is None:
        raise LefParseError("LEF is missing a SITE definition")
    library = Library(name=library_name, site_width=site_width, row_height=row_height)
    for cell in cells:
        library.add(cell)
    return library
