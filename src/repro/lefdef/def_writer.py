"""DEF subset writer (placement + routed wiring)."""

from __future__ import annotations

from repro.netlist.design import Design
from repro.route.wiring import NetRoute

_DBU = 1000


def write_def(design: Design, routes: dict[str, NetRoute] | None = None) -> str:
    """Serialize a placed (and optionally routed) design as DEF text.

    DEF distances are DBU with 1000 DBU per micron, i.e. integers equal
    to our internal nanometers -- no rounding anywhere.
    """
    routes = routes or {}
    lines: list[str] = []
    lines.append("VERSION 5.8 ;")
    lines.append("DIVIDERCHAR \"/\" ;")
    lines.append("BUSBITCHARS \"[]\" ;")
    lines.append(f"DESIGN {design.name} ;")
    lines.append(f"UNITS DISTANCE MICRONS {_DBU} ;")
    if design.die is not None:
        d = design.die
        lines.append(f"DIEAREA ( {d.xlo} {d.ylo} ) ( {d.xhi} {d.yhi} ) ;")

    instances = design.instances
    lines.append(f"COMPONENTS {len(instances)} ;")
    for inst in instances:
        if inst.is_placed:
            lines.append(
                f"- {inst.name} {inst.cell.name} + PLACED "
                f"( {inst.location.x} {inst.location.y} ) {inst.orientation.value} ;"
            )
        else:
            lines.append(f"- {inst.name} {inst.cell.name} ;")
    lines.append("END COMPONENTS")

    nets = design.nets
    lines.append(f"NETS {len(nets)} ;")
    for net in nets:
        terms = " ".join(f"( {t.instance} {t.pin} )" for t in net.terms)
        line = f"- {net.name} {terms}"
        route = routes.get(net.name)
        if route is not None and (route.segments or route.vias):
            parts: list[str] = []
            for seg in route.segments:
                a, b = seg.segment.a, seg.segment.b
                parts.append(f"M{seg.metal} ( {a.x} {a.y} ) ( {b.x} {b.y} )")
            for via in route.vias:
                name = via.via_name or f"V{via.lower}{via.lower + 1}"
                parts.append(f"M{via.lower} ( {via.at.x} {via.at.y} ) {name}")
            line += "\n  + ROUTED " + "\n    NEW ".join(parts)
        lines.append(line + " ;")
    lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"
