"""Connected-component decomposition of a MILP.

Two variables are connected when they share a constraint row; the
components of that graph are independent subproblems whose objectives
add.  On reduced routing models this splits nets confined to disjoint
regions of the clip graph into separate ILPs that solve much faster
than their union.

Variables that appear in no row form no component here -- the
presolve ``unconstrained-column`` pass fixes those analytically, and
the backends' trivial-model fast path covers any that remain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ilp.model import Constraint, LinExpr, Model


@dataclass(frozen=True)
class Component:
    """One independent subproblem of a decomposed model.

    ``var_map`` maps the parent model's variable index to this
    component's variable index, so sub-solutions can be scattered back
    into the parent's variable space.
    """

    model: Model
    var_map: dict[int, int]


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[max(ri, rj)] = min(ri, rj)


def decompose_model(model: Model) -> list[Component]:
    """Split ``model`` into independent components.

    Returns components ordered by their smallest parent variable index
    (deterministic).  A model with a single component comes back as one
    Component whose model is a rebuilt copy, so callers can treat the
    single- and multi-component cases uniformly.  The parent objective
    constant is NOT distributed -- each component model carries a zero
    objective constant and the caller re-adds ``model.objective.const``
    exactly once when merging.
    """
    n = len(model.variables)
    uf = _UnionFind(n)
    for con in model.constraints:
        indices = iter(con.expr.coefs)
        first = next(indices, None)
        if first is None:
            continue
        for j in indices:
            uf.union(first, j)

    # Group constrained variables by root; leave unconstrained ones to
    # whichever component comes first (they are analytically separable
    # anyway, and presolve normally fixed them already).
    roots: dict[int, list[int]] = {}
    constrained = set()
    for con in model.constraints:
        constrained.update(con.expr.coefs)
    for j in range(n):
        if j in constrained:
            roots.setdefault(uf.find(j), []).append(j)
    unconstrained = [j for j in range(n) if j not in constrained]
    if not roots:
        if n == 0:
            return []
        roots = {n: []}  # single pseudo-component for the loose columns
    if unconstrained:
        first_root = min(roots)
        roots[first_root] = sorted(roots[first_root] + unconstrained)

    components: list[Component] = []
    for root in sorted(roots):
        members = roots[root]
        sub = Model(name=f"{model.name}__c{len(components)}")
        var_map: dict[int, int] = {}
        for j in members:
            parent_var = model.variables[j]
            var_map[j] = sub.var(
                parent_var.name,
                parent_var.lb,
                parent_var.ub,
                integer=parent_var.is_integer,
            ).index
        member_set = var_map.keys()
        for con in model.constraints:
            if not con.expr.coefs:
                continue
            first = next(iter(con.expr.coefs))
            if first not in member_set:
                continue
            expr = LinExpr(
                {var_map[j]: c for j, c in con.expr.coefs.items()},
                con.expr.const,
            )
            sub.constraints.append(Constraint(expr, con.sense, con.name))
        sub.objective = LinExpr(
            {
                var_map[j]: c
                for j, c in model.objective.coefs.items()
                if j in member_set
            },
            0.0,
        )
        components.append(Component(model=sub, var_map=var_map))
    return components
