"""Connected-component decomposition of a MILP.

Two variables are connected when they share a constraint row; the
components of that graph are independent subproblems whose objectives
add.  On reduced routing models this splits nets confined to disjoint
regions of the clip graph into separate ILPs that solve much faster
than their union.

Variables that appear in no row form no component here -- the
presolve ``unconstrained-column`` pass fixes those analytically, and
the backends' trivial-model fast path covers any that remain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.ilp.csr import CsrModel
from repro.ilp.model import Constraint, LinExpr, Model


@dataclass(frozen=True)
class Component:
    """One independent subproblem of a decomposed model.

    ``var_map`` maps the parent model's variable index to this
    component's variable index, so sub-solutions can be scattered back
    into the parent's variable space.
    """

    model: Model
    var_map: dict[int, int]


@dataclass(frozen=True)
class CsrComponent:
    """Columnar twin of :class:`Component` (same ``var_map`` contract)."""

    model: CsrModel
    var_map: dict[int, int]


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[max(ri, rj)] = min(ri, rj)


def decompose_model(model: Model) -> list[Component]:
    """Split ``model`` into independent components.

    Returns components ordered by their smallest parent variable index
    (deterministic).  A model with a single component comes back as one
    Component whose model is a rebuilt copy, so callers can treat the
    single- and multi-component cases uniformly.  The parent objective
    constant is NOT distributed -- each component model carries a zero
    objective constant and the caller re-adds ``model.objective.const``
    exactly once when merging.
    """
    n = len(model.variables)
    uf = _UnionFind(n)
    for con in model.constraints:
        indices = iter(con.expr.coefs)
        first = next(indices, None)
        if first is None:
            continue
        for j in indices:
            uf.union(first, j)

    # Group constrained variables by root; leave unconstrained ones to
    # whichever component comes first (they are analytically separable
    # anyway, and presolve normally fixed them already).
    roots: dict[int, list[int]] = {}
    constrained = set()
    for con in model.constraints:
        constrained.update(con.expr.coefs)
    for j in range(n):
        if j in constrained:
            roots.setdefault(uf.find(j), []).append(j)
    unconstrained = [j for j in range(n) if j not in constrained]
    if not roots:
        if n == 0:
            return []
        roots = {n: []}  # single pseudo-component for the loose columns
    if unconstrained:
        first_root = min(roots)
        roots[first_root] = sorted(roots[first_root] + unconstrained)

    components: list[Component] = []
    for root in sorted(roots):
        members = roots[root]
        sub = Model(name=f"{model.name}__c{len(components)}")
        var_map: dict[int, int] = {}
        for j in members:
            parent_var = model.variables[j]
            var_map[j] = sub.var(
                parent_var.name,
                parent_var.lb,
                parent_var.ub,
                integer=parent_var.is_integer,
            ).index
        member_set = var_map.keys()
        for con in model.constraints:
            if not con.expr.coefs:
                continue
            first = next(iter(con.expr.coefs))
            if first not in member_set:
                continue
            expr = LinExpr(
                {var_map[j]: c for j, c in con.expr.coefs.items()},
                con.expr.const,
            )
            sub.constraints.append(Constraint(expr, con.sense, con.name))
        sub.objective = LinExpr(
            {
                var_map[j]: c
                for j, c in model.objective.coefs.items()
                if j in member_set
            },
            0.0,
        )
        components.append(Component(model=sub, var_map=var_map))
    return components


def decompose_csr(csr: CsrModel) -> list[CsrComponent]:
    """Columnar :func:`decompose_model`: identical partition, ordering,
    and per-component row order, computed on the CSR arrays.

    Variable connectivity is the bipartite (row, var) incidence graph's
    component structure (``scipy.sparse.csgraph``); a row belongs to the
    component of its first stored entry, matching the object walk.  Each
    component model carries a zero objective constant, exactly like the
    object decomposition.
    """
    n = csr.n_vars
    if n == 0:
        return []
    m = csr.n_rows
    entry_counts = np.diff(csr.indptr)
    nnz = len(csr.indices)
    constrained = np.zeros(n, dtype=bool)
    if nnz:
        constrained[csr.indices] = True
        graph = coo_matrix(
            (
                np.ones(nnz, dtype=np.int8),
                (n + np.repeat(np.arange(m, dtype=np.int64), entry_counts),
                 csr.indices),
            ),
            shape=(n + m, n + m),
        )
        labels = connected_components(graph, directed=False)[1][:n]
    else:
        labels = np.arange(n, dtype=np.int64)

    groups: dict[int, list[int]] = {}
    for j in np.flatnonzero(constrained).tolist():
        groups.setdefault(int(labels[j]), []).append(j)
    # Ascending member lists, components ordered by smallest member --
    # the object union-find's union-by-min gives exactly this order.
    ordered = sorted(groups.values(), key=lambda members: members[0])
    loose = np.flatnonzero(~constrained).tolist()
    if not ordered:
        ordered = [[]]  # single pseudo-component for the loose columns
    if loose:
        ordered[0] = sorted(ordered[0] + loose)

    has_entries = entry_counts > 0
    first_vars = np.full(m, -1, dtype=np.int64)
    first_vars[has_entries] = csr.indices[csr.indptr[:-1][has_entries]]
    local = np.full(n, -1, dtype=np.int64)
    row_names = csr.row_names if len(csr.row_names) == m else None

    components: list[CsrComponent] = []
    for k, members in enumerate(ordered):
        member_array = np.asarray(members, dtype=np.int64)
        local[member_array] = np.arange(len(members), dtype=np.int64)
        in_component = np.zeros(n, dtype=bool)
        in_component[member_array] = True
        row_mask = np.zeros(m, dtype=bool)
        row_mask[has_entries] = in_component[first_vars[has_entries]]
        keep = np.repeat(row_mask, entry_counts)
        counts = entry_counts[row_mask]
        indptr = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        sub = CsrModel(
            name=f"{csr.name}__c{k}",
            var_names=[csr.var_names[j] for j in members],
            lb=csr.lb[member_array].copy(),
            ub=csr.ub[member_array].copy(),
            integer=csr.integer[member_array].copy(),
            obj=csr.obj[member_array].copy(),
            obj_const=0.0,
            indptr=indptr,
            indices=local[csr.indices[keep]],
            data=csr.data[keep].copy(),
            senses=csr.senses[row_mask].copy(),
            row_const=csr.row_const[row_mask].copy(),
            row_names=(
                [row_names[r] for r in np.flatnonzero(row_mask).tolist()]
                if row_names is not None
                else []
            ),
        )
        components.append(
            CsrComponent(
                model=sub,
                var_map={int(j): i for i, j in enumerate(members)},
            )
        )
    return components
