"""Explicit-state exhaustive exploration of the lease protocol model.

The state of the system is finite once time is made relative (see
:mod:`repro.analysis.concurrency.protocol`): per group the lease tuple
``(holder, rel, done)`` and the result-record cells, per worker its
phase in the ``_worker_entry`` loop, plus the remaining crash/respawn
budgets.  :func:`check_protocol` runs a breadth-first search over
every interleaving of worker steps, ticks, crashes, and respawns,
checking safety invariants at each new state and event, then closes
with a bounded liveness pass.  BFS means the first violation found per
invariant carries a *minimal* counterexample schedule.

Checked invariants
------------------

``mutual_exclusion``
    A worker only starts working a group when the replayed board names
    it the live holder at that instant.  Two workers can legitimately
    overlap on one group *only* across a TTL expiry and reclaim (the
    documented at-least-once window); a grant while another lease is
    live is a protocol violation.
``no_lost_pair``
    Whenever a group is DONE in the journal, every one of its (clip,
    rule) pairs has at least one result record.  This is the exactness
    guarantee: a sweep that reports completion has lost nothing.
``no_duplicate_pair``
    All result records ever journaled for one pair carry identical
    payloads, so the journal's first-wins dedupe is sound: which copy
    survives is immaterial.  (At-least-once re-execution may append
    literal duplicates; *conflicting* duplicates are the violation.)
``done_terminal``
    No worker is ever granted a DONE group; completion is final.
``liveness``
    From every reachable state with at least one surviving worker (or
    a respawn still budgeted), some crash-free schedule reaches the
    all-groups-DONE state.  This is bounded liveness -- reachability
    of completion under fairness -- not full temporal liveness; see
    the caveats in ``docs/static_analysis.md``.

Worker-identity symmetry is quotiented away (states equal up to a
permutation of worker indices are explored once), which is sound for
all invariants above because none names a specific worker.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import permutations
from typing import Any

from repro.analysis.concurrency.protocol import (
    CLAIMING,
    CRASHED,
    EMPTY_CELL,
    IDLE,
    WORKING,
    ProtocolSpec,
    cell_conflicts,
    fold_claim,
    fold_done,
    fold_heartbeat,
    fold_tick,
    group_label,
    live_holder,
    result_cell_append,
    worker_label,
)

#: worker tuple when idle / crashed: no group, no pending pairs.
_IDLE_WORKER = (IDLE, -1, 0)
_CRASHED_WORKER = (CRASHED, -1, 0)


def initial_state(spec: ProtocolSpec) -> tuple:
    """All groups free, all pairs unjournaled, all workers idle."""
    groups = tuple((-1, -1, 0) for _ in range(spec.n_groups))
    results = tuple(
        tuple(EMPTY_CELL for _ in range(spec.pairs_per_group))
        for _ in range(spec.n_groups)
    )
    workers = tuple(_IDLE_WORKER for _ in range(spec.n_workers))
    return (groups, results, workers, spec.crash_budget, spec.respawn_budget)


def action_str(action: tuple) -> str:
    """Compact single-line form of one schedule action."""
    return " ".join(str(part) for part in action)


@dataclass(frozen=True)
class ProtocolViolation:
    """One invariant breach with its minimal witness schedule.

    ``schedule`` holds the raw action tuples; :func:`render_schedule`
    turns them into the narrated replay shown to humans.
    """

    invariant: str
    message: str
    schedule: tuple[tuple, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "schedule": [action_str(action) for action in self.schedule],
        }

    def sort_key(self) -> tuple:
        return (self.invariant, len(self.schedule), self.message)

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


@dataclass
class ExploreResult:
    """Everything one exhaustive run established."""

    spec: ProtocolSpec
    n_states: int = 0
    n_transitions: int = 0
    exhausted: bool = True
    violations: list[ProtocolViolation] = field(default_factory=list)
    #: transition-outcome counters (deterministic across runs).
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.exhausted and not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "n_states": self.n_states,
            "n_transitions": self.n_transitions,
            "exhausted": self.exhausted,
            "ok": self.ok,
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
            "violations": [
                v.to_dict()
                for v in sorted(self.violations,
                                key=ProtocolViolation.sort_key)
            ],
        }

    def summary(self) -> str:
        verdict = "ok" if self.ok else (
            "VIOLATED" if self.violations else "TRUNCATED"
        )
        bugs = self.spec.to_dict()["seeded_bugs"]
        seeded = f" seeded={','.join(bugs)}" if bugs else ""
        return (
            f"protocol[{self.spec.n_workers}w x {self.spec.n_groups}g x "
            f"{self.spec.pairs_per_group}p, ttl={self.spec.ttl}, "
            f"crashes={self.spec.crash_budget}{seeded}]: {verdict}, "
            f"{self.n_states} states, {self.n_transitions} transitions, "
            f"{len(self.violations)} violation(s)"
        )


# ---------------------------------------------------------------------------
# Transition relation
# ---------------------------------------------------------------------------


def _pending_mask(results_g: tuple) -> int:
    """Pairs with no journaled result yet -- the snapshot a worker
    takes when it starts a group (``resume=True`` skips finished
    pairs, so a reclaimed group re-solves only the remainder)."""
    mask = 0
    for pair, cell in enumerate(results_g):
        if cell[0] == 0:
            mask |= 1 << pair
    return mask


def _live_holder_for(group: tuple, spec: ProtocolSpec) -> int:
    """Live holder as the (possibly seeded-buggy) replay computes it.

    With ``done_not_terminal`` the hypothetical buggy replay also
    forgets the terminal guard on the holder query -- otherwise the
    dropped guard in the claim fold could never grant anything and the
    bug would be unobservable.
    """
    if spec.done_not_terminal:
        holder, rel, done = group
        if holder == -1 or rel < 0:
            return -1
        return holder
    return live_holder(group)


def successors(spec: ProtocolSpec, state: tuple):
    """Yield ``(action, new_state, outcome, entry_violation)`` tuples.

    ``action`` is a renderable tuple; ``outcome`` feeds the stats
    counters; ``entry_violation`` is ``None`` or an ``(invariant,
    message)`` pair detected *on this transition* (grant-time checks
    that cannot be expressed as a state predicate).
    """
    groups, results, workers, crashes, respawns = state

    # tick: every live lease ages one step.
    new_groups = tuple(fold_tick(g) for g in groups)
    if new_groups != groups:
        yield (("tick",), (new_groups, results, workers, crashes, respawns),
               "tick", None)

    for w, (phase, g, mask) in enumerate(workers):
        if phase == CRASHED:
            if respawns > 0:
                new_workers = _set(workers, w, _IDLE_WORKER)
                yield ((("respawn", w)),
                       (groups, results, new_workers, crashes, respawns - 1),
                       "respawn", None)
            continue

        # SIGKILL at any step.  Crashing *before* an append is the
        # torn-write state (the record never replays); crashing after
        # is the completed-write state -- both orderings are explored.
        if crashes > 0:
            new_workers = _set(workers, w, _CRASHED_WORKER)
            yield ((("crash", w)),
                   (groups, results, new_workers, crashes - 1, respawns),
                   "crash", None)

        if phase == IDLE:
            # Claim any group the worker's (possibly stale) read found
            # attractive.  Enabling every non-excluded target models
            # the read/claim race: the fold, not the reader, decides.
            for target in range(spec.n_groups):
                new_group, outcome = fold_claim(groups[target], w, spec)
                new_groups = _set(groups, target, new_group)
                if spec.skip_reread:
                    # Seeded bug: assume victory without re-reading.
                    pending = _pending_mask(results[target])
                    new_workers = _set(
                        workers, w, (WORKING, target, pending)
                    )
                    violation = _entry_check(
                        spec, new_groups[target], target, w
                    )
                    yield ((("claim", w, target)),
                           (new_groups, results, new_workers, crashes,
                            respawns),
                           f"claim-{outcome}", violation)
                else:
                    new_workers = _set(workers, w, (CLAIMING, target, 0))
                    yield ((("claim", w, target)),
                           (new_groups, results, new_workers, crashes,
                            respawns),
                           f"claim-{outcome}", None)
            continue

        if phase == CLAIMING:
            # Post-append re-read: the replayed board decides whether
            # the claim won; the loser simply goes back to the pool.
            won = _live_holder_for(groups[g], spec) == w
            if won:
                pending = _pending_mask(results[g])
                new_workers = _set(workers, w, (WORKING, g, pending))
                violation = _entry_check(spec, groups[g], g, w)
            else:
                new_workers = _set(workers, w, _IDLE_WORKER)
                violation = None
            yield ((("reread", w, g)),
                   (groups, results, new_workers, crashes, respawns),
                   "reread-won" if won else "reread-lost", violation)
            continue

        # phase == WORKING
        if spec.heartbeats:
            new_group, resurrected = fold_heartbeat(groups[g], w, spec)
            if new_group != groups[g]:
                new_groups = _set(groups, g, new_group)
                yield ((("heartbeat", w, g)),
                       (new_groups, results, workers, crashes, respawns),
                       "heartbeat-resurrected" if resurrected
                       else "heartbeat", None)
        if mask:
            pair = (mask & -mask).bit_length() - 1
            value = w + 1 if spec.nondet_results else 0
            new_cell = result_cell_append(results[g][pair], value)
            new_results = _set(
                results, g, _set(results[g], pair, new_cell)
            )
            new_workers = _set(workers, w, (WORKING, g, mask & (mask - 1)))
            dup = results[g][pair][0] > 0
            yield ((("result", w, g, pair)),
                   (groups, new_results, new_workers, crashes, respawns),
                   "result-duplicate" if dup else "result", None)
        if not mask or spec.early_done:
            new_groups = _set(groups, g, fold_done(groups[g]))
            new_workers = _set(workers, w, _IDLE_WORKER)
            outcome = "done-early" if mask else "done"
            yield ((("mark_done", w, g)),
                   (new_groups, results, new_workers, crashes, respawns),
                   outcome, None)


def _set(tpl: tuple, index: int, value) -> tuple:
    return tpl[:index] + (value,) + tpl[index + 1:]


def _entry_check(
    spec: ProtocolSpec, group: tuple, g: int, w: int
) -> "tuple[str, str] | None":
    """Grant-time invariants: run when a worker starts WORKING."""
    holder, rel, done = group
    if done:
        return (
            "done_terminal",
            f"{worker_label(w)} was granted {group_label(g)} after it "
            "was marked DONE",
        )
    live = live_holder(group)
    if live != w:
        other = worker_label(live) if live >= 0 else "nobody"
        return (
            "mutual_exclusion",
            f"{worker_label(w)} started working {group_label(g)} while "
            f"the replayed board names {other} the live holder",
        )
    return None


def _state_check(spec: ProtocolSpec, state: tuple) -> "tuple[str, str] | None":
    """State invariants, checked once per newly discovered state."""
    groups, results, _workers, _crashes, _respawns = state
    for g, (_holder, _rel, done) in enumerate(groups):
        if done:
            for pair, cell in enumerate(results[g]):
                if cell[0] == 0:
                    return (
                        "no_lost_pair",
                        f"{group_label(g)} is DONE but pair {pair} has "
                        "no result record in the journal",
                    )
        for pair, cell in enumerate(results[g]):
            if cell_conflicts(cell):
                return (
                    "no_duplicate_pair",
                    f"pair {pair} of {group_label(g)} has result records "
                    f"with conflicting payloads {list(cell[1])}",
                )
    return None


# ---------------------------------------------------------------------------
# Worker-symmetry canonicalization
# ---------------------------------------------------------------------------


def canonical_key(state: tuple, perms: "list[tuple[int, ...]]") -> tuple:
    """Minimal encoding of the state over worker permutations.

    Only worker identities are quotiented: every invariant is
    symmetric in them, and relabeling is an exact automorphism of the
    transition system (holders and worker slots are renamed together).
    """
    groups, results, workers, crashes, respawns = state
    best = None
    for perm in perms:
        new_groups = tuple(
            (perm[h] if h >= 0 else -1, rel, done)
            for (h, rel, done) in groups
        )
        new_workers = tuple(workers[i] for i in _inverse(perm))
        candidate = (new_groups, results, new_workers, crashes, respawns)
        if best is None or candidate < best:
            best = candidate
    assert best is not None  # perms always contains the identity
    return best


def _inverse(perm: "tuple[int, ...]") -> "tuple[int, ...]":
    inv = [0] * len(perm)
    for i, p in enumerate(perm):
        inv[p] = i
    return tuple(inv)


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


def check_protocol(spec: "ProtocolSpec | None" = None) -> ExploreResult:
    """Exhaustively explore the model and check every invariant.

    BFS from the initial state; the first counterexample recorded per
    invariant is minimal in schedule length.  After the search, a
    backward-reachability pass over the explored graph (crash edges
    excluded) checks bounded liveness.
    """
    if spec is None:
        spec = ProtocolSpec()
    result = ExploreResult(spec=spec)
    perms = list(permutations(range(spec.n_workers)))
    init = initial_state(spec)
    init_key = canonical_key(init, perms)
    # key -> (representative state, predecessor key, action, depth)
    seen: dict[tuple, tuple] = {init_key: (init, None, None, 0)}
    queue: deque[tuple] = deque([init_key])
    # key -> predecessor keys over non-crash edges (for liveness).
    rev: dict[tuple, list[tuple]] = {}
    win_keys: list[tuple] = []
    seen_invariants: set[str] = set()
    stats: dict[str, int] = {}

    def record_violation(
        invariant: str,
        message: str,
        key: tuple,
        extra_action: "tuple | None" = None,
    ) -> None:
        if invariant in seen_invariants:
            return  # keep the minimal (BFS-first) witness per invariant
        seen_invariants.add(invariant)
        schedule = _schedule(seen, key)
        if extra_action is not None:
            schedule = schedule + (extra_action,)
        result.violations.append(
            ProtocolViolation(invariant, message, schedule)
        )

    violation = _state_check(spec, init)
    if violation is not None:  # pragma: no cover - impossible initial
        record_violation(*violation, init_key)

    while queue:
        if len(seen) > spec.max_states:
            result.exhausted = False
            break
        key = queue.popleft()
        state, _pred, _action, depth = seen[key]
        if all(done for (_h, _r, done) in state[0]):
            win_keys.append(key)
            continue  # terminal for the sweep; explore nothing further
        for action, new_state, outcome, entry_violation in successors(
            spec, state
        ):
            result.n_transitions += 1
            stats[outcome] = stats.get(outcome, 0) + 1
            if entry_violation is not None:
                # Event-based invariant: path-dependent, so it must be
                # recorded even when the successor state was already
                # reached (possibly benignly) by another schedule.
                record_violation(
                    *entry_violation, key, extra_action=action
                )
            new_key = canonical_key(new_state, perms)
            is_new = new_key not in seen
            if is_new:
                seen[new_key] = (new_state, key, action, depth + 1)
                queue.append(new_key)
            if action[0] != "crash":
                rev.setdefault(new_key, []).append(key)
            if is_new:
                violation = _state_check(spec, new_state)
                if violation is not None:
                    record_violation(*violation, new_key)

    result.n_states = len(seen)
    result.stats = stats
    if result.exhausted and "liveness" not in seen_invariants:
        _check_liveness(spec, seen, rev, win_keys, record_violation)
    return result


def _check_liveness(
    spec: ProtocolSpec,
    seen: dict,
    rev: dict,
    win_keys: "list[tuple]",
    record_violation,
) -> None:
    """Backward reachability: every state with a surviving worker (or a
    budgeted respawn) must still be able to reach all-groups-DONE
    without further crashes."""
    can_win: set[tuple] = set(win_keys)
    frontier = deque(win_keys)
    while frontier:
        key = frontier.popleft()
        for pred in rev.get(key, ()):
            if pred not in can_win:
                can_win.add(pred)
                frontier.append(pred)
    stuck = None
    stuck_depth = -1
    for key, (state, _pred, _action, depth) in seen.items():
        if key in can_win:
            continue
        workers = state[2]
        alive = any(phase != CRASHED for (phase, _g, _m) in workers)
        respawnable = state[4] > 0 and any(
            phase == CRASHED for (phase, _g, _m) in workers
        )
        if not alive and not respawnable:
            continue  # all workers dead: the coordinator's inline floor
        if stuck is None or depth < stuck_depth:
            stuck = key
            stuck_depth = depth
    if stuck is not None:
        record_violation(
            "liveness",
            "a reachable state with a surviving worker cannot reach "
            "all-groups-DONE on any crash-free schedule",
            stuck,
        )


def _schedule(seen: dict, key: tuple) -> tuple:
    """Action path from the initial state to ``key`` (BFS tree walk)."""
    actions: list[tuple] = []
    while True:
        _state, pred, action, _depth = seen[key]
        if pred is None:
            break
        actions.append(action)
        key = pred
    return tuple(reversed(actions))


# ---------------------------------------------------------------------------
# Schedule rendering
# ---------------------------------------------------------------------------


def render_schedule(spec: ProtocolSpec, actions: "tuple | list") -> "list[str]":
    """Human-readable replay of an action schedule.

    Re-simulates the schedule from the initial state and narrates each
    step with its fold outcome, so a counterexample reads as the exact
    sequence of journal appends, clock ticks, and crashes that breaks
    the invariant.
    """
    lines: list[str] = []
    state = initial_state(spec)
    now = 0
    for step, action in enumerate(actions):
        matched = None
        for cand, new_state, outcome, _violation in successors(spec, state):
            if cand == action:
                matched = (new_state, outcome)
                break
        if matched is None:
            lines.append(f"{step:3d}. {action!r}: not enabled (model drift)")
            break
        state, outcome = matched
        if action[0] == "tick":
            now += 1
            lines.append(f"{step:3d}. tick -> t={now}")
            continue
        kind, w = action[0], action[1]
        who = worker_label(w)
        if kind == "crash":
            lines.append(f"{step:3d}. {who} SIGKILLed (appends nothing more)")
        elif kind == "respawn":
            lines.append(f"{step:3d}. {who} respawned by the coordinator")
        elif kind == "claim":
            lines.append(
                f"{step:3d}. {who} appends CLAIM({group_label(action[2])}) "
                f"@t={now} -> {outcome.removeprefix('claim-')}"
            )
        elif kind == "reread":
            lines.append(
                f"{step:3d}. {who} re-reads the journal: "
                f"{'won' if outcome == 'reread-won' else 'lost'} "
                f"{group_label(action[2])}"
            )
        elif kind == "heartbeat":
            note = (" (expired lease resurrected)"
                    if outcome == "heartbeat-resurrected" else "")
            lines.append(
                f"{step:3d}. {who} appends HEARTBEAT"
                f"({group_label(action[2])}) @t={now}{note}"
            )
        elif kind == "result":
            lines.append(
                f"{step:3d}. {who} appends result for pair "
                f"({group_label(action[2])}, {action[3]})"
                + (" [duplicate]" if outcome == "result-duplicate" else "")
            )
        elif kind == "mark_done":
            early = " with pairs unfinished" if outcome == "done-early" else ""
            lines.append(
                f"{step:3d}. {who} appends DONE({group_label(action[2])})"
                f"{early}"
            )
        else:  # pragma: no cover - exhaustive above
            lines.append(f"{step:3d}. {action!r}")
    return lines
