"""Formal model of the journal-backed lease protocol.

The distributed sweep coordinates exclusively through appended journal
records (:mod:`repro.exec.leases`), so its whole behaviour is a fold
over a record sequence plus the wall clock.  This module captures that
fold twice:

- :class:`ModelBoard` is an *absolute-time* replica of
  ``LeaseBoard.from_records`` -- same record dicts, same replay
  semantics -- used to validate the model against the real
  implementation by driving both with identical generated schedules
  (``tests/test_concurrency_model.py``).
- :class:`ProtocolSpec` plus the pure transition helpers below define
  a *relative-time* small-step system used by the exhaustive explorer
  (:mod:`repro.analysis.concurrency.explore`).  Leases store ticks
  remaining instead of absolute deadlines, which collapses the
  unbounded wall clock into a finite state space while preserving
  every ``now > expires`` comparison the real replay makes.

The spec also carries *seeded-bug* switches (``skip_reread``,
``early_done``, ``done_not_terminal``, ``nondet_results``) that
deliberately break one protocol obligation each.  They exist so the
checker can demonstrate that the invariants have teeth: every switch
must produce a minimal counterexample schedule, and the unmodified
protocol must produce none.

Torn writes are in scope by construction: a worker SIGKILLed mid-append
leaves a torn line that the journal quarantine drops, so from every
reader's perspective the record was never appended.  Crashing a model
worker *before* an append is therefore exactly the torn-write state,
and crashing it *after* is the completed-write state; both orderings
are explored at every append site.  The equivalence between a torn
line and an absent record is separately proven against the real
``CheckpointJournal`` in the conformance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exec.leases import CLAIM, DONE, HEARTBEAT, LEASE_KIND, RELEASE

#: Worker phases of the small-step model (mirrors ``_worker_entry``).
IDLE = 0
#: CLAIM appended, post-append re-read still pending.
CLAIMING = 1
#: Re-read confirmed ownership; appending result records.
WORKING = 2
#: SIGKILLed: appends nothing ever again; lease left to expire.
CRASHED = 3

PHASE_NAMES = {IDLE: "idle", CLAIMING: "claiming", WORKING: "working",
               CRASHED: "crashed"}

#: ``results`` cell codes (see :func:`result_cell_append`).
NO_RECORD = 0


@dataclass(frozen=True)
class ProtocolSpec:
    """Bounded configuration (and seeded bugs) of one model run.

    The defaults are the quick config used by unit tests and the CLI;
    CI's ``protocol-audit`` job runs the larger bounded config from
    the acceptance criteria.  ``ttl`` is in logical ticks: a lease
    claimed or heartbeat at tick *t* expires strictly after ``t +
    ttl`` ticks, matching the real replay's ``now > expires``.
    """

    n_workers: int = 2
    n_groups: int = 2
    pairs_per_group: int = 2
    ttl: int = 1
    crash_budget: int = 2
    respawn_budget: int = 1
    heartbeats: bool = True
    #: cap on explored states; exceeded => ``ExploreResult.exhausted``
    #: is False and the verdict only covers the explored prefix.
    max_states: int = 2_000_000

    # -- seeded bugs (each must yield a counterexample) ----------------------
    #: workers assume their claim won without the post-append re-read.
    skip_reread: bool = False
    #: workers may append DONE with unfinished pairs remaining.
    early_done: bool = False
    #: the replay honours claims on DONE groups (drops the terminal
    #: guard of ``LeaseBoard._apply``).
    done_not_terminal: bool = False
    #: result payloads depend on the appending worker, so a reclaimed
    #: group can journal conflicting records for one pair.
    nondet_results: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.n_workers <= 4:
            raise ValueError("n_workers must be in 1..4")
        if not 1 <= self.n_groups <= 4:
            raise ValueError("n_groups must be in 1..4")
        if not 1 <= self.pairs_per_group <= 3:
            raise ValueError("pairs_per_group must be in 1..3")
        if self.ttl < 1:
            raise ValueError("ttl must be >= 1")

    @property
    def buggy(self) -> bool:
        return (self.skip_reread or self.early_done
                or self.done_not_terminal or self.nondet_results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_workers": self.n_workers,
            "n_groups": self.n_groups,
            "pairs_per_group": self.pairs_per_group,
            "ttl": self.ttl,
            "crash_budget": self.crash_budget,
            "respawn_budget": self.respawn_budget,
            "heartbeats": self.heartbeats,
            "seeded_bugs": sorted(
                name
                for name in ("skip_reread", "early_done",
                             "done_not_terminal", "nondet_results")
                if getattr(self, name)
            ),
        }


# ---------------------------------------------------------------------------
# Absolute-time replica of LeaseBoard (conformance target)
# ---------------------------------------------------------------------------


@dataclass
class _ModelLease:
    holder: str | None = None
    expires: float = 0.0
    done: bool = False
    reclaims: int = 0


@dataclass
class ModelBoard:
    """Pure replica of ``LeaseBoard.from_records`` replay semantics.

    Deliberately written as an independent re-implementation (not an
    import) so the conformance suite can drive it and the real board
    with identical record sequences and fail loudly on any divergence
    -- the model checker's verdicts are only as good as this fold's
    fidelity to the deployed one.
    """

    groups: dict[str, _ModelLease] = field(default_factory=dict)
    #: drop the DONE-is-terminal guard (seeded bug surface).
    done_not_terminal: bool = False

    def apply(self, record: dict) -> None:
        event = record.get("event")
        group = record.get("group")
        worker = record.get("worker")
        if event not in (CLAIM, HEARTBEAT, RELEASE, DONE):
            return
        if not isinstance(group, str):
            return
        ts = float(record.get("ts", 0.0))
        ttl = float(record.get("ttl", 0.0))
        lease = self.groups.setdefault(group, _ModelLease())
        if lease.done and not self.done_not_terminal:
            return
        if event == CLAIM:
            if lease.holder is None or lease.holder == worker:
                lease.holder = str(worker)
                lease.expires = ts + ttl
            elif ts > lease.expires:
                lease.holder = str(worker)
                lease.expires = ts + ttl
                lease.reclaims += 1
        elif event == HEARTBEAT:
            if lease.holder == worker:
                lease.expires = max(lease.expires, ts + ttl)
        elif event == RELEASE:
            if lease.holder == worker:
                lease.holder = None
                lease.expires = 0.0
        elif event == DONE:
            lease.done = True
            lease.holder = None

    @classmethod
    def from_records(cls, records: "list[dict]") -> "ModelBoard":
        board = cls()
        for record in records:
            if str(record.get("kind", "result")) == LEASE_KIND:
                board.apply(record)
        return board

    def is_done(self, group: str) -> bool:
        lease = self.groups.get(group)
        return lease is not None and lease.done

    def holder(self, group: str, now: "float | None" = None) -> "str | None":
        lease = self.groups.get(group)
        if lease is None or lease.done or lease.holder is None:
            return None
        if now is not None and now > lease.expires:
            return None
        return lease.holder

    def available(self, group: str, now: float) -> bool:
        return not self.is_done(group) and self.holder(group, now) is None

    def reclaim_count(self) -> int:
        return sum(lease.reclaims for lease in self.groups.values())


# ---------------------------------------------------------------------------
# Relative-time lease fold used by the explorer
# ---------------------------------------------------------------------------
#
# A group is the tuple ``(holder, rel, done)``: ``holder`` is a worker
# index or -1; ``rel`` is the number of ticks the lease survives (a
# lease with rel == 0 is still live this tick and expires on the next
# tick; rel < 0 means expired).  ``done`` is 0/1.  The encoding is
# bisimilar to the absolute-time fold: claim/heartbeat at absolute
# time ``t`` sets ``expires = t + ttl``, and a query at ``t + k``
# compares ``t + k > expires`` -- i.e. ``k > ttl`` -- which is exactly
# ``rel = ttl - k < 0`` after ``k`` ticks.

FREE = (-1, -1, 0)

#: claim outcomes (reported in schedules and exploration stats).
GRANTED = "granted"
EXTENDED = "extended"
RECLAIMED = "reclaimed"
CONTESTED = "contested"
IGNORED_DONE = "ignored-done"


def fold_claim(group: tuple, worker: int, spec: ProtocolSpec) -> tuple:
    """Apply a CLAIM record; returns ``(new_group_state, outcome)``."""
    holder, rel, done = group
    if done and not spec.done_not_terminal:
        return group, IGNORED_DONE
    if holder == worker and holder != -1:
        return (worker, spec.ttl, done), EXTENDED
    if holder == -1:
        return (worker, spec.ttl, done), GRANTED
    if rel < 0:
        return (worker, spec.ttl, done), RECLAIMED
    return group, CONTESTED


def fold_heartbeat(group: tuple, worker: int, spec: ProtocolSpec) -> tuple:
    """Apply a HEARTBEAT record; returns ``(state, resurrected)``.

    ``resurrected`` is True for the boundary case the matrix in
    ``docs/robustness.md`` calls the heartbeat/expiry race: the lease
    had already expired but no peer had reclaimed it yet, so the
    stale holder's heartbeat legitimately revives it (file order is
    the tiebreak, and every reader agrees on file order).
    """
    holder, rel, done = group
    if done or holder != worker:
        return group, False
    return (worker, spec.ttl, done), rel < 0


def fold_done(group: tuple) -> tuple:
    """Apply a DONE record: terminal, holder cleared."""
    return (-1, -1, 1)


def fold_tick(group: tuple) -> tuple:
    """One logical tick: live leases move one step closer to expiry."""
    holder, rel, done = group
    if holder == -1 or rel < 0:
        return group
    return (holder, rel - 1, done)


def live_holder(group: tuple) -> int:
    """The live holder (worker index) or -1: free, expired, or done."""
    holder, rel, done = group
    if done or holder == -1 or rel < 0:
        return -1
    return holder


# -- result-cell abstraction -------------------------------------------------
#
# Each (group, pair) cell abstracts the multiset of result records
# journaled for that pair: ``(capped_count, values)`` where ``values``
# is the sorted tuple of distinct payload identities seen (capped at
# two -- one conflicting pair of values is already a violation).
# Payloads are deterministic per pair in the real system; the
# ``nondet_results`` seeded bug makes them worker-dependent instead.

EMPTY_CELL = (0, ())


def result_cell_append(cell: tuple, value: int) -> tuple:
    count, values = cell
    if value not in values:
        values = tuple(sorted((*values, value)))[:2]
    return (min(count + 1, 2), values)


def cell_conflicts(cell: tuple) -> bool:
    return len(cell[1]) > 1


# ---------------------------------------------------------------------------
# Schedules -> concrete journal records (conformance bridge)
# ---------------------------------------------------------------------------


def worker_label(worker: int) -> str:
    return f"worker-{worker}"


def group_label(group: int) -> str:
    return f"g{group}"


def trace_to_records(
    spec: ProtocolSpec, actions: "list[tuple]", base_ts: float = 100.0
) -> "list[dict]":
    """Concrete lease records for an explorer action schedule.

    Ticks advance the clock by one; every append lands at the current
    time.  The output has the exact shape ``LeaseManager._append``
    writes, so it can drive the real ``LeaseBoard`` and the
    :class:`ModelBoard` side by side.
    """
    now = base_ts
    records: list[dict] = []

    def rec(event: str, worker: int, group: int) -> dict:
        return {
            "kind": LEASE_KIND,
            "event": event,
            "group": group_label(group),
            "worker": worker_label(worker),
            "ts": now,
            "ttl": float(spec.ttl),
        }

    for action in actions:
        kind = action[0]
        if kind == "tick":
            now += 1.0
        elif kind == "claim":
            records.append(rec(CLAIM, action[1], action[2]))
        elif kind == "heartbeat":
            records.append(rec(HEARTBEAT, action[1], action[2]))
        elif kind == "mark_done":
            records.append(rec(DONE, action[1], action[2]))
        # reread/result/crash/respawn append no lease records.
    return records
