"""AST-based determinism/race lint for the distributed sweep layer.

Byte-identical Δcost tables under every interleaving rest on a handful
of code-level disciplines that no runtime test can exhaustively
enforce.  This pass walks the source tree and flags violations of each
as a structured finding:

``CONC001`` *unblessed-journal-write*
    File writes in journal-bearing modules outside the blessed sinks
    (the flock'd append helper, the atomic compaction/replace paths).
    Any other write can interleave with concurrent appenders or leave
    non-atomic state a crash exposes.
``CONC002`` *wall-clock or randomness in a pure module*
    ``time.time()`` / ``datetime.now()`` / ``random`` reachable from
    modules whose output must be a pure function of their inputs --
    journal replay, report formatting, static analysis.  A clock read
    there silently makes replays irreproducible.
``CONC003`` *unordered iteration feeding serialized output*
    Iterating a ``set`` directly (``for``/``join``/``list``/``tuple``
    without ``sorted``) anywhere, and ``json.dumps`` without
    ``sort_keys=True`` in modules that emit serialized reports.  Set
    order is salted per process; two workers would serialize the same
    data differently.
``CONC004`` *fork-unsafe module state*
    Module-level file handles, locks, or RNG instances.  Spawned
    children re-import the module (fresh state the parent never sees)
    while forked children share the handle -- either way the behaviour
    depends on the start method, which the runner deliberately pins.
``CONC005`` *non-reentrant work in a signal handler*
    Handlers registered via ``signal.signal`` that acquire locks,
    write, flush, or sleep.  A handler interrupting the flock'd append
    it then re-enters deadlocks or tears the journal.

Every rule honours a per-entry allowlist in ``pyproject.toml`` under
``[tool.repro.concurrency-lint]``; entries carry their justification
inline (``"CONC001:repro/exec/faults.py:flip_bit -- chaos tool"``).
Findings and reports serialize deterministically (sorted, schema
versioned) so CI can byte-diff two runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Dotted-call suffixes that read wall clocks or entropy (CONC002).
NONDETERMINISM_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "date.today",
    "random.random", "random.randint", "random.choice", "random.choices",
    "random.shuffle", "random.sample", "random.uniform", "random.randrange",
    "random.getrandbits", "random.seed",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
})

#: Constructors that create fork-unsafe state at module level (CONC004).
FORK_UNSAFE_CALLS = frozenset({
    "open", "os.fdopen",
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Pool", "multiprocessing.Queue",
    "multiprocessing.Manager", "multiprocessing.Lock",
    "random.Random", "numpy.random.default_rng", "np.random.default_rng",
    "numpy.random.RandomState", "np.random.RandomState",
})

#: Attribute-call names a signal handler must not make (CONC005): lock
#: acquisition, blocking waits, and journal/file IO are non-reentrant
#: with respect to the very code the signal interrupts.
HANDLER_BANNED_ATTRS = frozenset({
    "acquire", "join", "wait", "flush", "write", "fsync", "sleep",
    "dump", "dumps", "append",
})
HANDLER_BANNED_NAMES = frozenset({"open"})

#: File-writing call forms in journal modules (CONC001).
WRITE_ATTR_CALLS = frozenset({"write_text", "write_bytes"})
REPLACE_CALLS = frozenset({"os.replace", "os.rename"})


@dataclass(frozen=True)
class ConcurrencyFinding:
    """One lint hit, with its allowlist disposition."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    allowlisted: bool = False
    justification: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "allowlisted": self.allowlisted,
            "justification": self.justification,
        }

    def __str__(self) -> str:
        mark = " (allowlisted)" if self.allowlisted else ""
        return (
            f"{self.rule} {self.path}:{self.line} [{self.symbol}] "
            f"{self.message}{mark}"
        )


@dataclass(frozen=True)
class LintConfig:
    """Scopes and allowlist of one lint run.

    Paths are POSIX-style and relative to the directory containing the
    ``repro`` package (``repro/exec/checkpoint.py``); an entry ending
    in ``/`` matches the whole subtree.  ``allow`` entries are
    ``"RULE:path[:qualname] -- justification"``.
    """

    journal_modules: tuple[str, ...] = (
        "repro/exec/",
        "repro/ilp/solve_cache.py",
    )
    pure_modules: tuple[str, ...] = (
        "repro/exec/leases.py",
        "repro/exec/checkpoint.py",
        "repro/eval/report.py",
        "repro/util/tables.py",
        "repro/util/integrity.py",
        "repro/analysis/",
    )
    serialized_modules: tuple[str, ...] = (
        "repro/exec/checkpoint.py",
        "repro/eval/report.py",
        "repro/util/integrity.py",
        "repro/analysis/",
        "repro/cli.py",
        "repro/ilp/solve_cache.py",
        "repro/clips/serialization.py",
    )
    blessed_sinks: tuple[str, ...] = (
        "repro/exec/checkpoint.py:CheckpointJournal._append_locked",
        "repro/exec/checkpoint.py:CheckpointJournal._compact",
        "repro/exec/checkpoint.py:CheckpointJournal.clear",
        "repro/ilp/solve_cache.py:SolveCache.put",
        "repro/ilp/solve_cache.py:SolveCache._quarantine",
    )
    allow: tuple[str, ...] = ()


@dataclass
class ConcurrencyLintReport:
    """All findings of one run; ``errors`` excludes allowlisted ones."""

    findings: list[ConcurrencyFinding] = field(default_factory=list)
    n_files: int = 0

    @property
    def errors(self) -> "list[ConcurrencyFinding]":
        return [f for f in self.findings if not f.allowlisted]

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict[str, Any]:
        ordered = sorted(self.findings, key=ConcurrencyFinding.sort_key)
        return {
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "n_errors": len(self.errors),
            "ok": self.ok,
            "findings": [f.to_dict() for f in ordered],
        }


# ---------------------------------------------------------------------------
# Allowlist / pyproject config
# ---------------------------------------------------------------------------


def _parse_allow_entry(entry: str) -> tuple[str, str, str, str]:
    """``"RULE:path[:qualname] -- why"`` -> (rule, path, qualname, why)."""
    body, _, justification = entry.partition(" -- ")
    parts = body.strip().split(":")
    rule = parts[0]
    path = parts[1] if len(parts) > 1 else ""
    qualname = parts[2] if len(parts) > 2 else "*"
    return rule, path, qualname, justification.strip()


def _allow_match(
    config: LintConfig, rule: str, path: str, qualname: str
) -> "tuple[bool, str]":
    for entry in config.allow:
        arule, apath, aqual, why = _parse_allow_entry(entry)
        if arule != rule or apath != path:
            continue
        if aqual == "*" or aqual == qualname:
            return True, why
    return False, ""


def _in_scope(path: str, scopes: tuple[str, ...]) -> bool:
    return any(
        path.startswith(scope) if scope.endswith("/") else path == scope
        for scope in scopes
    )


def load_config(pyproject: "Path | None") -> LintConfig:
    """Lint config with ``[tool.repro.concurrency-lint]`` overlays.

    Only the allowlist and scope lists are configurable; rule
    semantics are fixed in code.  Parsing falls back to a minimal
    line-based reader on Python 3.10 (no :mod:`tomllib`): the section
    must contain only ``key = [...]`` string-list assignments, which
    is all the schema allows anyway.
    """
    defaults = LintConfig()
    if pyproject is None or not pyproject.exists():
        return defaults
    section = _read_section(pyproject)
    if not section:
        return defaults

    def strings(key: str, fallback: tuple[str, ...]) -> tuple[str, ...]:
        value = section.get(key)
        if value is None:
            return fallback
        return tuple(str(item) for item in value)

    return LintConfig(
        journal_modules=strings("journal-modules", defaults.journal_modules),
        pure_modules=strings("pure-modules", defaults.pure_modules),
        serialized_modules=strings(
            "serialized-modules", defaults.serialized_modules
        ),
        blessed_sinks=strings("blessed-sinks", defaults.blessed_sinks),
        allow=strings("allow", defaults.allow),
    )


_SECTION = "tool.repro.concurrency-lint"


def _read_section(pyproject: Path) -> dict:
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib

        data = tomllib.loads(text)
        node: Any = data
        for part in _SECTION.split("."):
            if not isinstance(node, dict) or part not in node:
                return {}
            node = node[part]
        return node if isinstance(node, dict) else {}
    except ModuleNotFoundError:  # Python 3.10: minimal fallback parser
        return _read_section_fallback(text)


def _read_section_fallback(text: str) -> dict:
    lines = text.splitlines()
    in_section = False
    body: list[str] = []
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("["):
            in_section = stripped == f"[{_SECTION}]"
            continue
        if in_section and not stripped.startswith("#"):
            body.append(line)
    section: dict = {}
    key = None
    buffer = ""
    for line in body:
        if "=" in line and key is None:
            key, _, rest = line.partition("=")
            key = key.strip()
            buffer = rest.strip()
        elif key is not None:
            buffer += " " + line.strip()
        if key is not None and buffer.count("[") == buffer.count("]"):
            try:
                section[key] = ast.literal_eval(buffer)
            except (ValueError, SyntaxError):
                pass
            key, buffer = None, ""
    return section


# ---------------------------------------------------------------------------
# The AST pass
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str:
    """Dotted text of a Name/Attribute chain (``a.b.c``), else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _matches(dotted: str, patterns: frozenset) -> bool:
    """True when the call's dotted name matches a pattern by suffix
    (``datetime.datetime.now`` matches ``datetime.now``)."""
    if not dotted:
        return False
    if dotted in patterns:
        return True
    parts = dotted.split(".")
    for n in (2, 3):
        if len(parts) >= n and ".".join(parts[-n:]) in patterns:
            return True
    return False


def _is_write_open(call: ast.Call) -> bool:
    """``open(..., mode)`` / ``os.fdopen(..., mode)`` with a
    write-capable mode (contains w/a/x/+)."""
    name = _dotted(call.func)
    if name not in ("open", "os.fdopen"):
        return False
    mode: "ast.expr | None" = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # read-only default mode
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wax+")
    return True  # dynamic mode: assume write-capable (conservative)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _dotted(node.func) in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, config: LintConfig):
        self.path = path
        self.config = config
        self.raw: list[tuple[str, int, int, str, str]] = []
        self._stack: list[str] = []
        #: handler function names registered via ``signal.signal``.
        self.handler_names: set[str] = set()
        self.lambda_handlers: list[ast.Lambda] = []
        self.functions: dict[str, ast.AST] = {}

    # -- qualname bookkeeping ------------------------------------------------

    @property
    def qualname(self) -> str:
        return ".".join(self._stack) if self._stack else "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def _visit_func(self, node) -> None:
        self._stack.append(node.name)
        self.functions[node.name] = node
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- findings ------------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        self.raw.append(
            (rule, getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
             self.qualname, message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        self._check_journal_write(node, dotted)
        self._check_nondeterminism(node, dotted)
        self._check_serialization(node, dotted)
        self._check_fork_unsafe(node, dotted)
        self._collect_handler(node, dotted)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report(
                "CONC003", node.iter,
                "iteration over a set has process-salted order; wrap the "
                "iterable in sorted()",
            )
        self.generic_visit(node)

    # -- rule bodies ---------------------------------------------------------

    def _check_journal_write(self, node: ast.Call, dotted: str) -> None:
        if not _in_scope(self.path, self.config.journal_modules):
            return
        sink = f"{self.path}:{self.qualname}"
        if sink in self.config.blessed_sinks:
            return
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else ""
        if _is_write_open(node):
            what = f"write-capable {_dotted(node.func)}()"
        elif attr in WRITE_ATTR_CALLS:
            what = f".{attr}()"
        elif dotted in REPLACE_CALLS:
            what = f"{dotted}()"
        else:
            return
        self.report(
            "CONC001", node,
            f"{what} outside the blessed journal sinks; route the write "
            "through the flock'd append helper or an atomic-replace sink",
        )

    def _check_nondeterminism(self, node: ast.Call, dotted: str) -> None:
        if not _in_scope(self.path, self.config.pure_modules):
            return
        if _matches(dotted, NONDETERMINISM_CALLS):
            self.report(
                "CONC002", node,
                f"{dotted}() in a pure replay/report module; inject the "
                "clock or randomness from the caller instead",
            )

    def _check_serialization(self, node: ast.Call, dotted: str) -> None:
        if dotted in ("json.dumps", "json.dump") and _in_scope(
            self.path, self.config.serialized_modules
        ):
            sorted_keys = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if not sorted_keys:
                self.report(
                    "CONC003", node,
                    f"{dotted}() without sort_keys=True in a serializing "
                    "module; dict insertion order is not a stable contract "
                    "across writers",
                )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            if node.args and _is_set_expr(node.args[0]):
                self.report(
                    "CONC003", node,
                    "join() over a set has process-salted order; wrap the "
                    "iterable in sorted()",
                )
        if dotted in ("list", "tuple") and node.args and _is_set_expr(
            node.args[0]
        ):
            self.report(
                "CONC003", node,
                f"{dotted}() over a set has process-salted order; use "
                "sorted() to fix the sequence",
            )

    def _check_fork_unsafe(self, node: ast.Call, dotted: str) -> None:
        if self._stack:
            return  # only module-level state is fork/spawn-hazardous
        if _matches(dotted, FORK_UNSAFE_CALLS) or (
            dotted == "open" and _is_write_open(node)
        ):
            self.report(
                "CONC004", node,
                f"module-level {dotted}() creates state captured across "
                "_mp_context() starts; construct it per-process instead",
            )

    def _collect_handler(self, node: ast.Call, dotted: str) -> None:
        if dotted != "signal.signal" or len(node.args) < 2:
            return
        handler = node.args[1]
        if isinstance(handler, ast.Name):
            self.handler_names.add(handler.id)
        elif isinstance(handler, ast.Lambda):
            self.lambda_handlers.append(handler)


def _check_handlers(visitor: _Visitor) -> None:
    """CONC005: scan the bodies of registered signal handlers."""
    bodies: list[tuple[str, ast.AST]] = []
    for name in sorted(visitor.handler_names):
        func = visitor.functions.get(name)
        if func is not None:
            bodies.append((name, func))
    for i, lam in enumerate(visitor.lambda_handlers):
        bodies.append((f"<lambda#{i}>", lam))
    for name, body in bodies:
        for node in ast.walk(body):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else ""
            )
            banned = (
                dotted in HANDLER_BANNED_NAMES or attr in HANDLER_BANNED_ATTRS
            )
            if banned:
                visitor.raw.append((
                    "CONC005", node.lineno, node.col_offset, name,
                    f"signal handler {name!r} calls "
                    f"{dotted or '.' + attr}(); handlers must only set "
                    "flags or re-raise -- non-reentrant work deadlocks or "
                    "tears the journal it interrupted",
                ))


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_source(
    source: str, path: str, config: "LintConfig | None" = None
) -> "list[ConcurrencyFinding]":
    """Lint one module's source text (unit-test entry point)."""
    if config is None:
        config = LintConfig()
    tree = ast.parse(source)
    visitor = _Visitor(path, config)
    visitor.visit(tree)
    _check_handlers(visitor)
    findings = []
    for rule, line, col, qualname, message in visitor.raw:
        allowed, why = _allow_match(config, rule, path, qualname)
        findings.append(
            ConcurrencyFinding(
                rule=rule, path=path, line=line, col=col, symbol=qualname,
                message=message, allowlisted=allowed, justification=why,
            )
        )
    return sorted(findings, key=ConcurrencyFinding.sort_key)


def package_root() -> Path:
    """Directory containing the installed/served ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def lint_concurrency(
    root: "Path | None" = None,
    config: "LintConfig | None" = None,
) -> ConcurrencyLintReport:
    """Lint every module of the ``repro`` package under ``root``.

    ``root`` is the directory *containing* the ``repro`` package
    (defaults to the imported one); the pyproject allowlist is read
    from the enclosing checkout when present.
    """
    if root is None:
        root = package_root()
    if config is None:
        pyproject = _find_pyproject(root)
        config = load_config(pyproject)
    report = ConcurrencyLintReport()
    for path in sorted((root / "repro").rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root).as_posix()
        report.n_files += 1
        report.findings.extend(
            lint_source(path.read_text(encoding="utf-8"), rel, config)
        )
    report.findings.sort(key=ConcurrencyFinding.sort_key)
    return report


def _find_pyproject(root: Path) -> "Path | None":
    for candidate in (root, *root.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.exists():
            return pyproject
    return None
