"""Concurrency-correctness static analysis (see ``docs/static_analysis.md``).

Two engines audit the distributed sweep layer:

- :mod:`repro.analysis.concurrency.protocol` /
  :mod:`repro.analysis.concurrency.explore`: an explicit-state model
  checker that exhaustively explores a formal model of the
  lease/journal coordination protocol (:mod:`repro.exec.leases`) on
  bounded configurations -- every interleaving of claims, heartbeats,
  results, completions, TTL expiries, worker crashes, and respawns --
  and proves the safety invariants (claim mutual exclusion, no lost or
  duplicated (clip, rule) pairs, DONE is terminal) plus bounded
  liveness (every group can always still reach DONE while a worker
  survives).  Violations come back as minimal, human-readable
  schedules.
- :mod:`repro.analysis.concurrency.code_lint`: an AST-based
  determinism/race lint over ``src/repro`` that flags journal writes
  outside the blessed flock'd sink, wall-clock/randomness reachable
  from pure replay or report-formatting modules, unordered set
  iteration feeding serialized output, fork-unsafe module-level state,
  and non-reentrant signal handlers, with a per-rule allowlist in
  ``pyproject.toml``.
"""

from repro.analysis.concurrency.code_lint import (
    ConcurrencyFinding,
    ConcurrencyLintReport,
    LintConfig,
    lint_concurrency,
    lint_source,
)
from repro.analysis.concurrency.explore import (
    ExploreResult,
    ProtocolViolation,
    check_protocol,
    render_schedule,
)
from repro.analysis.concurrency.protocol import (
    ModelBoard,
    ProtocolSpec,
    trace_to_records,
)

__all__ = [
    "ConcurrencyFinding",
    "ConcurrencyLintReport",
    "ExploreResult",
    "LintConfig",
    "ModelBoard",
    "ProtocolSpec",
    "ProtocolViolation",
    "check_protocol",
    "lint_concurrency",
    "lint_source",
    "render_schedule",
    "trace_to_records",
]
