"""Micro-clip corpus for the formulation-equivalence checker.

Each micro-clip is a hand-built, deliberately tiny switchbox whose
local routing pattern space is small enough to enumerate exhaustively,
while still exercising one or more rule families: via adjacency
blocking, SADP end-of-line patterns (on M2 through M5, so every
Table-3 ``SADP >= Mx`` configuration binds somewhere in the corpus),
shorts / vertex capacity, preferred-direction wiring, and blockages.

All corpus nets are 2-pin: the enumerator's pattern space (one
source-sink path per net, optionally extended with a cycle) then
covers the ILP's integer assignment space exactly, because e = f for
2-pin nets and flow conservation decomposes any support into a path
plus arc-disjoint cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clips.clip import Clip, ClipNet, ClipPin, Vertex, paper_directions


@dataclass(frozen=True)
class MicroClip:
    """One corpus entry: the clip plus enumeration hints."""

    clip: Clip
    #: rule families this clip was designed to exercise.
    families: tuple[str, ...]
    #: also enumerate wrong-direction wire edges (direction family).
    include_offdirection: bool = False


def _pin(*vertices: Vertex) -> ClipPin:
    return ClipPin(access=frozenset(vertices))


def _net(name: str, source: ClipPin, sink: ClipPin) -> ClipNet:
    return ClipNet(name=name, pins=(source, sink))


def _clip(
    name: str,
    nx: int,
    ny: int,
    nz: int,
    nets: tuple[ClipNet, ...],
    obstacles: frozenset[Vertex] = frozenset(),
) -> Clip:
    return Clip(
        name=name,
        nx=nx,
        ny=ny,
        nz=nz,
        horizontal=paper_directions(nz),
        nets=nets,
        obstacles=obstacles,
    )


def _mc_via() -> MicroClip:
    """3x2x2: two nets whose vias compete in the middle columns.

    Net ``a`` runs from a column-0 pin to an upper-layer pin at x=2;
    net ``b`` must hop columns 1->2 through the upper layer, so its two
    vias sit laterally adjacent to each other and to a's wires --
    exercising via adjacency, shorts, vertex capacity, and routing
    over the foreign pin metal at (1, y, 0).
    """
    a = _net("a", _pin((0, 0, 0), (0, 1, 0)), _pin((2, 0, 1)))
    b = _net("b", _pin((1, 0, 0), (1, 1, 0)), _pin((2, 0, 0), (2, 1, 0)))
    return MicroClip(
        clip=_clip("mc-via", 3, 2, 2, (a, b)),
        families=("via_adjacency", "shorts"),
    )


def _mc_sadp_m2() -> MicroClip:
    """3x4x1, all-M2: two vertical runs whose line ends interact.

    Net ``a`` may start its column-0 run at y=0 or y=1 (two-vertex
    pin); starting at y=0 puts its bottom EOL one track along and one
    track across from b's bottom EOL at (1, 1) -- a forbidden
    same-polarity misalignment -- while starting at y=1 aligns them,
    which SADP line-end cutting permits.
    """
    a = _net("a", _pin((0, 0, 0), (0, 1, 0)), _pin((0, 3, 0)))
    b = _net("b", _pin((1, 1, 0)), _pin((1, 3, 0)))
    return MicroClip(
        clip=_clip("mc-sadp2", 3, 4, 1, (a, b)),
        families=("sadp_eol",),
    )


def _mc_sadp_m3() -> MicroClip:
    """4x2x2: two horizontal M3 runs with interacting EOLs.

    Net ``a`` crosses the clip on the upper (M3) layer; net ``b``
    makes a short M3 run one track over.  Their end-of-lines land on
    forbidden same/opposite offsets unless a detours, and every detour
    spends extra vias whose sites neighbor each other -- coupling the
    SADP and via-adjacency families.
    """
    a = _net("a", _pin((0, 0, 0)), _pin((3, 0, 0)))
    b = _net("b", _pin((1, 1, 0)), _pin((2, 1, 0)))
    return MicroClip(
        clip=_clip("mc-sadp3", 4, 2, 2, (a, b)),
        families=("sadp_eol", "via_adjacency", "shorts"),
    )


def _mc_block() -> MicroClip:
    """3x2x2 with an obstacle at (1, 0, 1).

    Net ``a``'s direct upper-layer run passes through the obstacle
    (DRC-flagged, ILP-unrepresentable); the y=1 detour is clean but
    brushes against net ``b``'s pin and wire.
    """
    a = _net("a", _pin((0, 0, 0)), _pin((2, 0, 0)))
    b = _net("b", _pin((1, 1, 0)), _pin((1, 0, 0)))
    return MicroClip(
        clip=_clip(
            "mc-block", 3, 2, 2, (a, b), obstacles=frozenset({(1, 0, 1)})
        ),
        families=("blockages", "shorts"),
    )


def _mc_tall() -> MicroClip:
    """2x2x4 (M2..M5): one net climbing the full stack.

    Detour patterns create stacked and laterally adjacent vias on
    three cut layers and same-net EOL pairs on every metal, so the
    ``SADP >= M4`` / ``>= M5`` configurations and both via-adjacency
    modes all bind somewhere in the pattern space.
    """
    a = _net("a", _pin((0, 0, 0)), _pin((1, 1, 3)))
    return MicroClip(
        clip=_clip("mc-tall", 2, 2, 4, (a,)),
        families=("sadp_eol", "via_adjacency"),
    )


def _mc_dir() -> MicroClip:
    """2x2x1: the sink is only reachable against the layer direction.

    With off-direction edges in the enumeration universe, every
    pattern carries a direction violation and the ILP (which has no
    arcs against the preferred direction) must reject them all.
    """
    a = _net("a", _pin((0, 0, 0)), _pin((1, 1, 0)))
    return MicroClip(
        clip=_clip("mc-dir", 2, 2, 1, (a,)),
        families=("directions",),
        include_offdirection=True,
    )


def micro_corpus() -> list[MicroClip]:
    """The deterministic equivalence-checking corpus, in fixed order."""
    return [
        _mc_via(),
        _mc_sadp_m2(),
        _mc_sadp_m3(),
        _mc_block(),
        _mc_tall(),
        _mc_dir(),
    ]
