"""Model-level restriction proofs between rule configurations.

:func:`repro.router.rules.is_restriction` answers "is ``other`` a pure
restriction of ``base``?" syntactically, from the rule parameters.
This module answers the same question *semantically, on the built
models*: ``other`` restricts ``base`` on a clip exactly when every
feasible point of ``other``'s ILP is feasible in ``base``'s.  Both
models come from the same :class:`BaseFormulation` core, so the shared
rows and columns are literally identical and only the per-rule *delta
rows* (via-adjacency blocking, SADP indicator blocks) need proof.

Each base delta row is discharged by the cheapest sufficient method:

1. **match** -- the row appears verbatim (canonically, by variable
   *name*: per-rule SADP indicators get fresh indices but deterministic
   names) among ``other``'s rows;
2. **dominated** -- an ``other`` row pointwise-dominates it over the
   nonnegative orthant (all model variables have lb >= 0);
3. **lp** -- an LP certificate: optimizing the row's left-hand side
   over ``other``'s LP relaxation cannot violate the row.  Sound for
   the integer hull (integer points are LP-feasible); incomplete, so a
   failed LP never *disproves* restriction -- the proof just doesn't
   hold and callers must fall back to a cold solve.

The resulting :class:`RestrictionProof` is what the incremental sweep
(:mod:`repro.eval.flow`) consumes to certify warm-start edges, cross-
checked against the syntactic predicate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.semantics.report import SCHEMA_VERSION
from repro.clips.clip import Clip
from repro.ilp.model import Constraint, Model
from repro.router.formulation import BaseFormulation, formulation_cache
from repro.router.rules import RuleConfig, is_restriction

_TOL = 1e-9

#: A canonical row: (sense, const, ((var_name, coef), ...) sorted).
_CanonRow = tuple[str, float, tuple[tuple[str, float], ...]]


def _canon(model: Model, row: Constraint) -> _CanonRow:
    terms = tuple(
        sorted(
            (model.variables[index].name, round(coef, 9))
            for index, coef in row.expr.coefs.items()
        )
    )
    return (row.sense, round(row.expr.const, 9), terms)


@dataclass(frozen=True)
class RestrictionProof:
    """Certificate that ``other`` restricts ``base`` on one clip.

    ``holds`` is True only when *every* base delta row was discharged;
    ``methods`` lists the distinct methods used.  ``predicate`` records
    the syntactic :func:`is_restriction` verdict for cross-checking --
    the prover must confirm every pair the predicate accepts (the
    predicate is the conservative one), and may additionally prove
    pairs the predicate rejects (e.g. rule deltas that fall outside
    the clip's grid).
    """

    clip_name: str
    base_rule: str
    other_rule: str
    holds: bool
    n_rows: int = 0
    n_matched: int = 0
    n_dominated: int = 0
    n_lp: int = 0
    failures: tuple[str, ...] = ()
    predicate: bool = False

    @property
    def methods(self) -> tuple[str, ...]:
        out = []
        if self.n_matched:
            out.append("match")
        if self.n_dominated:
            out.append("dominated")
        if self.n_lp:
            out.append("lp")
        return tuple(out)

    @property
    def agrees_with_predicate(self) -> bool:
        """False only in the buggy direction: the syntactic predicate
        accepted a pair the model-level prover could not certify."""
        return self.holds or not self.predicate

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "restriction_proof",
            "clip": self.clip_name,
            "base": self.base_rule,
            "other": self.other_rule,
            "holds": self.holds,
            "predicate": self.predicate,
            "n_rows": self.n_rows,
            "methods": {
                "match": self.n_matched,
                "dominated": self.n_dominated,
                "lp": self.n_lp,
            },
            "failures": list(self.failures),
        }


def _dominates(base_row: Constraint, other_row: Constraint,
               names_base: list[str], names_other: list[str]) -> bool:
    """True when satisfying ``other_row`` forces ``base_row`` over
    x >= 0 (every model variable is nonnegative)."""
    if base_row.sense != other_row.sense or base_row.sense == "==":
        return False
    base = {
        names_base[index]: coef for index, coef in base_row.expr.coefs.items()
    }
    other = {
        names_other[index]: coef
        for index, coef in other_row.expr.coefs.items()
    }
    names = set(base) | set(other)
    if base_row.sense == "<=":
        # sum(cb x) + kb <= sum(co x) + ko <= 0 needs cb <= co, kb <= ko.
        if base_row.expr.const > other_row.expr.const + _TOL:
            return False
        return all(
            base.get(name, 0.0) <= other.get(name, 0.0) + _TOL
            for name in names
        )
    # ">=": sum(cb x) + kb >= sum(co x) + ko >= 0 needs cb >= co, kb >= ko.
    if base_row.expr.const < other_row.expr.const - _TOL:
        return False
    return all(
        base.get(name, 0.0) >= other.get(name, 0.0) - _TOL
        for name in names
    )


def _vacuous(row: Constraint) -> bool:
    """Rows satisfied by every x >= 0, regardless of the model."""
    if row.sense == "<=":
        return row.expr.const <= _TOL and all(
            coef <= _TOL for coef in row.expr.coefs.values()
        )
    if row.sense == ">=":
        return row.expr.const >= -_TOL and all(
            coef >= -_TOL for coef in row.expr.coefs.values()
        )
    return False


class _LpCertifier:
    """LP-relaxation implication certificates over one model."""

    def __init__(self, model: Model):
        self.model = model
        self._arrays = None

    def _build(self):
        import numpy as np

        model = self.model
        n = model.n_vars
        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for con in model.constraints:
            dense = np.zeros(n)
            for index, coef in con.expr.coefs.items():
                dense[index] = coef
            rhs = -con.expr.const
            if con.sense == "<=":
                a_ub.append(dense)
                b_ub.append(rhs)
            elif con.sense == ">=":
                a_ub.append(-dense)
                b_ub.append(-rhs)
            else:
                a_eq.append(dense)
                b_eq.append(rhs)
        bounds = [
            (v.lb, None if v.ub == float("inf") else v.ub)
            for v in model.variables
        ]
        self._arrays = (
            np.asarray(a_ub) if a_ub else None,
            np.asarray(b_ub) if b_ub else None,
            np.asarray(a_eq) if a_eq else None,
            np.asarray(b_eq) if b_eq else None,
            bounds,
        )
        return self._arrays

    def implies(self, row: Constraint, name_to_index: dict[str, int],
                names_base: list[str]) -> bool:
        """Does every LP-feasible point of the model satisfy ``row``?

        ``row`` lives in the *base* model; its variables are mapped by
        name.  A name absent from this model denotes a free column the
        model cannot control -- the certificate then fails.
        """
        try:
            import numpy as np
            from scipy.optimize import linprog
        except ImportError:  # pragma: no cover - scipy-less environments
            return False

        coefs = np.zeros(self.model.n_vars)
        for index, coef in row.expr.coefs.items():
            mapped = name_to_index.get(names_base[index])
            if mapped is None:
                return False
            coefs[mapped] = coef
        if self._arrays is None:
            self._build()
        a_ub, b_ub, a_eq, b_eq, bounds = self._arrays
        # Maximize the LHS for "<=" rows, minimize for ">=" rows.
        sign = -1.0 if row.sense == "<=" else 1.0
        result = linprog(
            sign * coefs,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if result.status == 2:
            return True  # the model is LP-infeasible: implication is vacuous
        if not result.success:
            return False
        extreme = sign * result.fun + row.expr.const
        if row.sense == "<=":
            return bool(extreme <= _TOL)
        return bool(extreme >= -_TOL)


def prove_restriction(
    clip: Clip,
    base: RuleConfig,
    other: RuleConfig,
    *,
    wire_cost: float = 1.0,
    via_cost: float = 4.0,
    max_failures: int = 5,
    formulation: BaseFormulation | None = None,
) -> RestrictionProof:
    """Prove that ``other``'s feasible routings are feasible in ``base``.

    Both models are specialized from one shared core, so the proof
    obligation reduces to ``base``'s delta rows.  The returned proof
    ``holds`` only when every row was discharged.
    """
    predicate = is_restriction(base, other)
    if base.allow_via_shapes != other.allow_via_shapes:
        return RestrictionProof(
            clip_name=clip.name,
            base_rule=base.name,
            other_rule=other.name,
            holds=False,
            failures=(
                "different routing graphs: allow_via_shapes differs",
            ),
            predicate=predicate,
        )
    if formulation is None:
        # Shared with the solve path: certifying a restriction and then
        # routing the same clip builds the base formulation once.
        formulation = formulation_cache().base_for(
            clip,
            allow_via_shapes=base.allow_via_shapes,
            wire_cost=wire_cost,
            via_cost=via_cost,
        )
    n_core = len(formulation.model.constraints)
    ilp_base = formulation.specialize(base)
    ilp_other = formulation.specialize(other)
    base_rows = ilp_base.model.constraints[n_core:]
    other_rows = ilp_other.model.constraints[n_core:]

    names_base = [v.name for v in ilp_base.model.variables]
    names_other = [v.name for v in ilp_other.model.variables]
    other_canon = {_canon(ilp_other.model, row) for row in other_rows}
    other_by_sense: dict[str, list[Constraint]] = {}
    for row in other_rows:
        other_by_sense.setdefault(row.sense, []).append(row)
    name_to_index = {
        name: index for index, name in enumerate(names_other)
    }
    certifier = _LpCertifier(ilp_other.model)

    n_matched = n_dominated = n_lp = 0
    failures: list[str] = []
    for row_offset, row in enumerate(base_rows):
        if _canon(ilp_base.model, row) in other_canon or _vacuous(row):
            n_matched += 1
            continue
        if any(
            _dominates(row, candidate, names_base, names_other)
            for candidate in other_by_sense.get(row.sense, ())
        ):
            n_dominated += 1
            continue
        if certifier.implies(row, name_to_index, names_base):
            n_lp += 1
            continue
        if len(failures) < max_failures:
            failures.append(
                f"delta row {n_core + row_offset} not implied: "
                f"{row.expr!r} {row.sense} 0"
            )
        else:
            failures.append("...")
            break

    return RestrictionProof(
        clip_name=clip.name,
        base_rule=base.name,
        other_rule=other.name,
        holds=not failures,
        n_rows=len(base_rows),
        n_matched=n_matched,
        n_dominated=n_dominated,
        n_lp=n_lp,
        failures=tuple(failures),
        predicate=predicate,
    )


@dataclass
class RestrictionProver:
    """Memoizing facade used by the incremental sweep.

    Proofs are cached per (clip identity, base, other); the prover
    keeps strong references to proved clips, so identity keys cannot
    be reused while cached (mirrors
    :class:`repro.router.formulation.FormulationCache`).
    """

    wire_cost: float = 1.0
    via_cost: float = 4.0
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _proofs: dict[tuple, RestrictionProof] = field(default_factory=dict)
    _clips: dict[int, Clip] = field(default_factory=dict)
    _bases: dict[tuple, BaseFormulation] = field(default_factory=dict)

    def prove(
        self, clip: Clip, base: RuleConfig, other: RuleConfig
    ) -> RestrictionProof:
        key = (id(clip), base, other)
        with self._lock:
            cached = self._proofs.get(key)
            if cached is not None:
                return cached
        base_key = (id(clip), base.allow_via_shapes)
        with self._lock:
            formulation = self._bases.get(base_key)
        if formulation is None and base.allow_via_shapes == other.allow_via_shapes:
            formulation = formulation_cache().base_for(
                clip,
                allow_via_shapes=base.allow_via_shapes,
                wire_cost=self.wire_cost,
                via_cost=self.via_cost,
            )
            with self._lock:
                self._bases[base_key] = formulation
        proof = prove_restriction(
            clip,
            base,
            other,
            wire_cost=self.wire_cost,
            via_cost=self.via_cost,
            formulation=formulation,
        )
        with self._lock:
            self._clips[id(clip)] = clip
            self._proofs[key] = proof
        return proof

    def clear(self) -> None:
        with self._lock:
            self._proofs.clear()
            self._clips.clear()
            self._bases.clear()
