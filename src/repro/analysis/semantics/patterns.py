"""Local routing-pattern enumeration and ILP assignment construction.

The equivalence checker works on *patterns*: for every net of a
micro-clip, one simple source-to-sink path through a geometric
"universe" graph, optionally extended (for the soundness direction) by
one vertex-disjoint directed cycle.  The universe is a superset of the
ILP's arc space -- it also contains obstacle vertices, other nets' pin
metal, and (optionally) wire edges against the layer direction -- so
patterns the ILP cannot even represent are still enumerated and must
be flagged by the geometric DRC oracle for the encoding to count as
equivalent.

Each pattern maps two ways:

- :func:`pattern_routing` decodes it to a :class:`ClipRouting`, which
  the DRC oracle judges;
- :func:`pattern_assignment` encodes it as a 0/1 point over the ILP's
  variables (path arcs, the matching virtual supersource / supersink /
  pin-chain arcs, and minimally-raised SADP indicator variables),
  which :meth:`Model.is_feasible` judges.  ``None`` means the pattern
  is not representable in the ILP at all -- equivalent to infeasible.

The SADP ``p`` indicators are the only auxiliary variables: they carry
``>=`` lower bounds (raised by wire/cross arc products) and appear
positively in ``<=`` forbidden-pattern rows, so the *minimal* raise
computed by fixpoint propagation is exactly the solver-optimal
completion -- if the minimal point is infeasible, every completion is.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.clips.clip import Clip, ClipNet, Vertex
from repro.router.formulation import NetVars, RoutingIlp
from repro.router.graph import SwitchboxGraph

#: Edge kinds a pattern step can take.
WIRE = "wire"          # along the layer's routing direction
OFFWIRE = "offwire"    # against the direction (never ILP-representable)
VIA = "via"            # between vertically adjacent vertices
PIN = "pin"            # zero-geometry hop inside the net's own pin metal

_Step = tuple[Vertex, Vertex, str]


@dataclass(frozen=True)
class NetPattern:
    """One net's candidate local routing: a path plus optional cycle."""

    net_name: str
    path: tuple[_Step, ...]
    cycle: tuple[_Step, ...] = ()

    @property
    def size(self) -> int:
        """Physical footprint: wire + via steps (pin hops are free)."""
        return sum(
            1 for _, _, kind in self.path + self.cycle if kind != PIN
        )

    def to_dict(self) -> dict[str, Any]:
        def ser(steps: tuple[_Step, ...]) -> list[list[Any]]:
            return [[list(a), list(b), kind] for a, b, kind in steps]

        payload: dict[str, Any] = {"path": ser(self.path)}
        if self.cycle:
            payload["cycle"] = ser(self.cycle)
        return payload


# -- the enumeration universe -------------------------------------------------


def net_universe(
    clip: Clip, net: ClipNet, include_offdirection: bool = False
) -> dict[Vertex, list[tuple[Vertex, str]]]:
    """Adjacency of the geometric universe graph for one net.

    Contains every grid wire edge along the layer direction, every via
    edge, this net's own pin-chain hops (consecutive sorted access
    vertices -- mirroring how both the ILP and the DRC oracle treat pin
    metal as one conductor), and, when requested, wire edges *against*
    the layer direction.  Obstacles and foreign pin vertices are NOT
    removed: patterns through them exist and must be DRC-flagged.
    """
    adj: dict[Vertex, list[tuple[Vertex, str]]] = defaultdict(list)

    def link(a: Vertex, b: Vertex, kind: str) -> None:
        adj[a].append((b, kind))
        adj[b].append((a, kind))

    for z in range(clip.nz):
        horizontal = clip.horizontal[z]
        for y in range(clip.ny):
            for x in range(clip.nx):
                if x + 1 < clip.nx:
                    kind = WIRE if horizontal else OFFWIRE
                    if kind == WIRE or include_offdirection:
                        link((x, y, z), (x + 1, y, z), kind)
                if y + 1 < clip.ny:
                    kind = OFFWIRE if horizontal else WIRE
                    if kind == WIRE or include_offdirection:
                        link((x, y, z), (x, y + 1, z), kind)
    for z in range(clip.nz - 1):
        for y in range(clip.ny):
            for x in range(clip.nx):
                link((x, y, z), (x, y, z + 1), VIA)
    for pin in net.pins:
        access = sorted(pin.access)
        for a, b in zip(access, access[1:]):
            link(a, b, PIN)

    for vertex in adj:
        adj[vertex].sort(key=lambda item: (item[0], item[1]))
    return adj


def enumerate_net_paths(
    clip: Clip,
    net: ClipNet,
    *,
    include_offdirection: bool = False,
    max_paths: int = 400,
) -> tuple[list[NetPattern], bool]:
    """All simple source-to-sink paths of a 2-pin net, in deterministic
    DFS order.  Returns ``(patterns, exhausted)``; ``exhausted`` is
    False when ``max_paths`` truncated the enumeration."""
    if len(net.sinks) != 1:
        raise ValueError(
            f"net {net.name!r} has {len(net.sinks)} sinks; the pattern "
            "enumerator supports 2-pin micro-clip nets only"
        )
    adj = net_universe(clip, net, include_offdirection)
    sink_access = set(net.sinks[0].access)
    patterns: list[NetPattern] = []
    exhausted = True

    def dfs(vertex: Vertex, visited: set[Vertex], steps: list[_Step]) -> bool:
        """Returns False when the path cap was hit (abort)."""
        if vertex in sink_access:
            patterns.append(NetPattern(net.name, tuple(steps)))
            if len(patterns) >= max_paths:
                return False
            # A path may also continue through the sink access vertex
            # (e.g. feed through pin metal); keep exploring.
        for neighbor, kind in adj.get(vertex, ()):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            steps.append((vertex, neighbor, kind))
            if not dfs(neighbor, visited, steps):
                return False
            steps.pop()
            visited.remove(neighbor)
        return True

    for start in sorted(net.source.access):
        if start in sink_access:
            patterns.append(NetPattern(net.name, ()))
            continue
        if not dfs(start, {start}, []):
            exhausted = False
            break
    return patterns, exhausted


def enumerate_net_cycles(
    clip: Clip, net: ClipNet, *, max_cycles: int = 64
) -> list[tuple[_Step, ...]]:
    """Directed simple cycles over the net's physical universe (wire +
    via edges, direction-correct only: cycles against the direction are
    never ILP-representable and add nothing to the soundness sweep).

    Canonical form: each cycle starts at its minimal vertex; the two
    traversal directions are distinct cycles (distinct arc supports).
    """
    adj = net_universe(clip, net, include_offdirection=False)
    cycles: list[tuple[_Step, ...]] = []
    vertices = sorted(adj)

    def dfs(start: Vertex, vertex: Vertex, visited: set[Vertex],
            steps: list[_Step]) -> bool:
        for neighbor, kind in adj.get(vertex, ()):
            if kind == PIN:
                continue
            if neighbor == start and len(steps) >= 3:
                cycles.append(tuple(steps + [(vertex, neighbor, kind)]))
                if len(cycles) >= max_cycles:
                    return False
                continue
            if neighbor <= start or neighbor in visited:
                continue
            visited.add(neighbor)
            steps.append((vertex, neighbor, kind))
            if not dfs(start, neighbor, visited, steps):
                return False
            steps.pop()
            visited.remove(neighbor)
        return True

    for start in vertices:
        if not dfs(start, start, {start}, []):
            break
    return cycles


def pattern_vertices(pattern: NetPattern) -> set[Vertex]:
    out: set[Vertex] = set()
    for a, b, _ in pattern.path + pattern.cycle:
        out.add(a)
        out.add(b)
    return out


def enumerate_clip_patterns(
    clip: Clip,
    *,
    include_offdirection: bool = False,
    cycles: bool = True,
    max_paths_per_net: int = 400,
    max_patterns: int = 20000,
) -> tuple[list[tuple[NetPattern, ...]], int, bool]:
    """The clip's pattern space: the cartesian product of per-net paths,
    plus (for the soundness direction) every product variant in which
    exactly one net additionally carries a vertex-disjoint cycle.

    Returns ``(combos, n_path_combos, exhausted)`` where the first
    ``n_path_combos`` entries are the pure path products -- the only
    patterns the completeness direction judges (a cycle never helps
    reach a sink, so a clean-but-infeasible cycle variant would be a
    false incompleteness alarm).
    """
    per_net: list[list[NetPattern]] = []
    exhausted = True
    for net in clip.nets:
        paths, net_exhausted = enumerate_net_paths(
            clip,
            net,
            include_offdirection=include_offdirection,
            max_paths=max_paths_per_net,
        )
        exhausted &= net_exhausted
        per_net.append(paths)

    def products(parts: list[list[NetPattern]]) -> Iterator[tuple[NetPattern, ...]]:
        if not parts:
            yield ()
            return
        for head in parts[0]:
            for rest in products(parts[1:]):
                yield (head, *rest)

    combos: list[tuple[NetPattern, ...]] = []
    for combo in products(per_net):
        combos.append(combo)
        if len(combos) >= max_patterns:
            exhausted = False
            break
    n_path_combos = len(combos)

    if cycles and exhausted:
        cycle_lists = [
            enumerate_net_cycles(clip, net) for net in clip.nets
        ]
        for combo in list(combos):
            for k, net_cycles in enumerate(cycle_lists):
                base = combo[k]
                used = pattern_vertices(base)
                for cyc in net_cycles:
                    if any(
                        a in used or b in used for a, b, _ in cyc
                    ):
                        continue
                    extended = list(combo)
                    extended[k] = NetPattern(base.net_name, base.path, cyc)
                    combos.append(tuple(extended))
                    if len(combos) >= max_patterns:
                        return combos, n_path_combos, False
    return combos, n_path_combos, exhausted


# -- decoding to geometry -----------------------------------------------------


def pattern_routing(clip: Clip, combo: tuple[NetPattern, ...]):
    """Decode a pattern combo into the DRC oracle's input form."""
    from repro.router.solution import ClipRouting, NetSolution

    nets = []
    for pattern in combo:
        decoded = NetSolution(net_name=pattern.net_name)
        seen: set[frozenset[Vertex]] = set()
        for a, b, kind in pattern.path + pattern.cycle:
            key = frozenset((a, b))
            if key in seen:
                continue
            seen.add(key)
            if kind in (WIRE, OFFWIRE):
                decoded.wire_edges.append((a, b))
            elif kind == VIA:
                lo = a if a[2] < b[2] else b
                decoded.vias.append(lo)
            # PIN hops are existing pin metal, not drawn routing.
        nets.append(decoded)
    return ClipRouting(nets=nets, cost=0.0)


# -- encoding to an ILP assignment -------------------------------------------


def _virtual_arc_lookup(
    graph: SwitchboxGraph, nv: NetVars
) -> dict[tuple[int, int], int]:
    out = {}
    for arc_index in nv.virtual_arcs:
        arc = graph.arcs[arc_index]
        out[(arc.tail, arc.head)] = arc_index
    return out


def pattern_assignment(
    ilp: RoutingIlp, combo: tuple[NetPattern, ...]
) -> dict[int, float] | None:
    """Encode a pattern combo as a point over the ILP's variables.

    Returns ``None`` when some step has no usable arc (off-direction
    edge, blocked vertex, foreign pin metal): the pattern is outside
    the ILP's representable space, i.e. infeasible by construction.
    """
    graph = ilp.graph
    values: dict[int, float] = {}
    for nv, pattern in zip(ilp.nets, combo):
        virtual = _virtual_arc_lookup(graph, nv)

        def set_arc(arc_index: int | None, nv: NetVars = nv) -> bool:
            if arc_index is None:
                return False
            e = nv.e.get(arc_index)
            if e is None:
                return False
            values[e.index] = 1.0
            f = nv.f.get(arc_index)
            if f is not None:
                values[f.index] = 1.0
            return True

        if pattern.path:
            first, last = pattern.path[0][0], pattern.path[-1][1]
        else:
            access = set(nv.net.source.access) & set(nv.net.sinks[0].access)
            if not access:
                return None
            first = last = min(access)
        source_arc = virtual.get((nv.supersource, graph.vid(*first)))
        sink_arc = virtual.get((graph.vid(*last), nv.supersinks[0]))
        if not (set_arc(source_arc) and set_arc(sink_arc)):
            return None
        for a, b, kind in pattern.path + pattern.cycle:
            va, vb = graph.vid(*a), graph.vid(*b)
            if kind in (WIRE, OFFWIRE):
                ok = set_arc(graph.wire_arc_between(va, vb))
            elif kind == VIA:
                lo = a if a[2] < b[2] else b
                site = graph.via_site_arcs.get((lo[0], lo[1], lo[2]))
                if site is None:
                    ok = False
                else:
                    up, down = site
                    ok = set_arc(up if a[2] < b[2] else down)
            else:  # PIN
                ok = set_arc(virtual.get((va, vb)))
            if not ok:
                return None
    _raise_auxiliaries(ilp, values)
    return values


def _raise_auxiliaries(ilp: RoutingIlp, values: dict[int, float]) -> None:
    """Minimal completion of auxiliary (SADP indicator) variables.

    Fixpoint: while some ``>=`` row is violated and contains exactly
    one raisable non-decision variable with positive coefficient,
    raise it to the smallest satisfying value.  Decision variables
    (the e/f support chosen by the pattern) are never touched.
    """
    model = ilp.model
    decision = set()
    for nv in ilp.nets:
        for var in nv.e.values():
            decision.add(var.index)
        for var in nv.f.values():
            decision.add(var.index)

    for _ in range(4):
        changed = False
        for con in model.constraints:
            if con.sense != ">=":
                continue
            lhs = con.expr.const
            free = []
            for index, coef in con.expr.coefs.items():
                lhs += coef * values.get(index, 0.0)
                if index not in decision and coef > 0:
                    free.append((index, coef))
            if lhs >= -1e-9:
                continue
            raisable = [
                (index, coef)
                for index, coef in free
                if values.get(index, 0.0) < model.variables[index].ub - 1e-9
            ]
            if len(raisable) != 1:
                continue
            index, coef = raisable[0]
            need = values.get(index, 0.0) + (-lhs) / coef
            var = model.variables[index]
            if var.is_integer:
                need = float(int(need + 1 - 1e-9))
            values[index] = min(need, var.ub)
            changed = True
        if not changed:
            return
