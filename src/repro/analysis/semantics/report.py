"""Structured findings of the formulation-semantics analyses.

Everything here serializes to JSON deterministically: dictionaries are
emitted with sorted keys, finding lists are sorted by a total order,
and every top-level payload carries :data:`SCHEMA_VERSION` so CI can
byte-diff reports across runs and detect format drift explicitly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Version of the JSON report schema emitted by ``repro analyze`` (and
#: by the sorted ``repro lint`` payload).  Bump on breaking changes.
SCHEMA_VERSION = 1

#: The rule families the equivalence checker reasons about, i.e. the
#: DRC violation kinds a local routing pattern can exhibit (``open`` is
#: excluded: enumerated patterns are connected by construction).
FAMILIES = (
    "blockages",
    "directions",
    "sadp_eol",
    "shorts",
    "via_adjacency",
)

#: DRC violation kind -> rule family.
VIOLATION_FAMILY = {
    "obstacle": "blockages",
    "direction": "directions",
    "sadp_eol": "sadp_eol",
    "short": "shorts",
    "pin_short": "shorts",
    "via_adjacency": "via_adjacency",
    "open": "connectivity",
}


@dataclass(frozen=True)
class SemanticsFinding:
    """One equivalence counterexample: a local routing pattern on which
    the built ILP and the geometric DRC oracle disagree.

    ``kind`` is ``"unsound"`` (the ILP accepts an assignment whose
    decoded routing violates DRC -- the encoding under-constrains) or
    ``"incomplete"`` (a DRC-clean pattern admits no feasible
    assignment -- the encoding over-constrains, e.g. a presolve or
    delta bug silently cut legal routings).  ``pattern`` is the
    minimal witness: per net, its wire edges and via sites.
    """

    kind: str
    family: str
    clip_name: str
    rule_name: str
    message: str
    pattern: tuple[tuple[str, Any], ...] = ()
    violations: tuple[str, ...] = ()
    size: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "family": self.family,
            "clip": self.clip_name,
            "rule": self.rule_name,
            "message": self.message,
            "pattern": {name: detail for name, detail in self.pattern},
            "violations": list(self.violations),
            "size": self.size,
        }

    def sort_key(self) -> tuple:
        return (
            self.clip_name,
            self.rule_name,
            self.kind,
            self.family,
            self.size,
            self.message,
        )

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.clip_name}/{self.rule_name} "
            f"({self.family}): {self.message}"
        )


@dataclass
class EquivalenceReport:
    """Result of one (micro-clip, rule) equivalence run.

    The checker enumerated ``n_patterns`` local routing patterns,
    found ``n_feasible`` of them ILP-feasible and ``n_clean`` of them
    DRC-clean, and emitted a finding for every (kind, family) class of
    disagreement, keeping the minimal witness per class.  ``sound`` /
    ``complete`` summarize the two proof directions; ``exhausted`` is
    False when the pattern cap truncated enumeration (the proof then
    covers the enumerated prefix only -- never silently).
    """

    clip_name: str
    rule_name: str
    families: tuple[str, ...]
    n_patterns: int = 0
    n_path_patterns: int = 0
    n_feasible: int = 0
    n_clean: int = 0
    exhausted: bool = True
    observed: tuple[str, ...] = ()
    findings: list[SemanticsFinding] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not any(f.kind == "unsound" for f in self.findings)

    @property
    def complete(self) -> bool:
        return not any(f.kind == "incomplete" for f in self.findings)

    @property
    def ok(self) -> bool:
        return self.sound and self.complete

    def to_dict(self) -> dict[str, Any]:
        return {
            "clip": self.clip_name,
            "rule": self.rule_name,
            "families": list(self.families),
            "n_patterns": self.n_patterns,
            "n_path_patterns": self.n_path_patterns,
            "n_feasible": self.n_feasible,
            "n_clean": self.n_clean,
            "exhausted": self.exhausted,
            "observed": list(self.observed),
            "sound": self.sound,
            "complete": self.complete,
            "findings": [
                f.to_dict()
                for f in sorted(self.findings, key=SemanticsFinding.sort_key)
            ],
        }

    def summary(self) -> str:
        verdict = "ok" if self.ok else (
            ("UNSOUND " if not self.sound else "")
            + ("INCOMPLETE" if not self.complete else "")
        ).strip()
        return (
            f"{self.clip_name} {self.rule_name}: {verdict}, "
            f"{self.n_patterns} patterns "
            f"({self.n_feasible} feasible, {self.n_clean} clean)"
            + ("" if self.exhausted else ", TRUNCATED")
        )


def dump_json(payload: Any) -> str:
    """Byte-deterministic JSON used by the analyze/lint CLI paths."""
    return json.dumps(payload, indent=2, sort_keys=True)
