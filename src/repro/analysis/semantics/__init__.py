"""Formulation-semantics analyses: static DRC-equivalence proofs of
the routing ILP and model-level restriction proofs between rule
configurations (see ``docs/static_analysis.md``)."""

from repro.analysis.semantics.equivalence import (
    check_equivalence,
    matrix_to_dict,
    run_equivalence_matrix,
)
from repro.analysis.semantics.microclips import MicroClip, micro_corpus
from repro.analysis.semantics.patterns import (
    NetPattern,
    enumerate_clip_patterns,
    pattern_assignment,
    pattern_routing,
)
from repro.analysis.semantics.report import (
    FAMILIES,
    SCHEMA_VERSION,
    EquivalenceReport,
    SemanticsFinding,
    dump_json,
)
from repro.analysis.semantics.restriction import (
    RestrictionProof,
    RestrictionProver,
    prove_restriction,
)

__all__ = [
    "FAMILIES",
    "SCHEMA_VERSION",
    "EquivalenceReport",
    "SemanticsFinding",
    "dump_json",
    "MicroClip",
    "micro_corpus",
    "NetPattern",
    "enumerate_clip_patterns",
    "pattern_assignment",
    "pattern_routing",
    "check_equivalence",
    "matrix_to_dict",
    "run_equivalence_matrix",
    "RestrictionProof",
    "RestrictionProver",
    "prove_restriction",
]
