"""DRC-equivalence checking of the routing ILP formulation.

For a micro-clip and a rule configuration this module enumerates the
local routing pattern space (:mod:`.patterns`) and proves, pattern by
pattern, that the built ILP and the geometric DRC oracle agree:

- **soundness**: every pattern whose ILP encoding is feasible decodes
  to a DRC-clean routing (the encoding does not under-constrain);
- **completeness**: every DRC-clean pure-path pattern admits a
  feasible ILP assignment (the encoding does not over-constrain).

Disagreements become :class:`SemanticsFinding` counterexamples with
the *minimal* witness pattern per (kind, family) class.  The optional
solver sweep closes the gap between enumerated patterns and the ILP's
full integer space: it enumerates every feasible arc support directly
from the solver via no-good cuts and DRC-checks each one.

A deliberately broken encoding is simulated by passing ``model_rules``
different from the DRC ``rules``: the ILP is built under the tampered
configuration while patterns are judged under the true one, which is
exactly how a dropped forbidden offset or an over-eager presolve would
manifest.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.semantics.microclips import MicroClip, micro_corpus
from repro.analysis.semantics.patterns import (
    NetPattern,
    enumerate_clip_patterns,
    pattern_assignment,
    pattern_routing,
)
from repro.analysis.semantics.report import (
    SCHEMA_VERSION,
    VIOLATION_FAMILY,
    EquivalenceReport,
    SemanticsFinding,
)
from repro.clips.clip import Clip
from repro.drc.checker import check_clip_routing
from repro.router.formulation import RoutingIlp, build_routing_ilp
from repro.router.graph import ArcKind
from repro.router.rules import RuleConfig


def _solve(model):
    from repro.ilp.highs_backend import solve_with_highs

    try:
        return solve_with_highs(model)
    except ImportError:  # pragma: no cover - scipy-less fallback
        from repro.ilp.bnb import solve_with_bnb

        return solve_with_bnb(model)


def _families_in_play(
    clip: Clip, rules: RuleConfig, include_offdirection: bool
) -> tuple[str, ...]:
    """Which rule families this (clip, rules) run can observe."""
    families = {"blockages", "shorts"}
    if include_offdirection:
        families.add("directions")
    if rules.via_restriction.blocked_offsets() and clip.nz > 1:
        families.add("via_adjacency")
    if rules.sadp_min_metal is not None and any(
        rules.sadp_applies_to(clip.metal_of(z)) for z in range(clip.nz)
    ):
        families.add("sadp_eol")
    return tuple(sorted(families))


def _row_family(ilp: RoutingIlp, row_index: int) -> str:
    """Best-effort family of a model row, from its variable content."""
    p_indices: set[int] = set()
    via_e: set[int] = set()
    for nv in ilp.nets:
        for var in list(nv.p_pos.values()) + list(nv.p_neg.values()):
            p_indices.add(var.index)
        for arc_index, var in nv.e.items():
            if ilp.graph.arcs[arc_index].kind in (ArcKind.VIA, ArcKind.SHAPE):
                via_e.add(var.index)
    row = ilp.model.constraints[row_index]
    indices = set(row.expr.coefs)
    if indices & p_indices:
        return "sadp_eol"
    if indices and indices <= via_e and row.sense == "<=":
        return "via_adjacency"
    return "core"


def _first_violated_row(ilp: RoutingIlp, values: dict[int, float]) -> int | None:
    model = ilp.model
    for row_index, con in enumerate(model.constraints):
        lhs = con.expr.const
        for index, coef in con.expr.coefs.items():
            lhs += coef * values.get(index, model.variables[index].lb)
        if con.sense == "<=" and lhs > 1e-6:
            return row_index
        if con.sense == ">=" and lhs < -1e-6:
            return row_index
        if con.sense == "==" and abs(lhs) > 1e-6:
            return row_index
    return None


def _pattern_payload(combo: tuple[NetPattern, ...]) -> tuple:
    return tuple(
        (pattern.net_name, pattern.to_dict()) for pattern in combo
    )


def check_equivalence(
    clip: Clip,
    rules: RuleConfig,
    *,
    model_rules: RuleConfig | None = None,
    wire_cost: float = 1.0,
    via_cost: float = 4.0,
    include_offdirection: bool = False,
    cycles: bool = True,
    max_paths_per_net: int = 400,
    max_patterns: int = 20000,
    solver_sweep: bool = False,
    solver_cap: int = 1500,
) -> EquivalenceReport:
    """Prove (or refute) ILP/DRC agreement on one micro-clip.

    The ILP is built under ``model_rules`` (default: ``rules``) while
    every pattern is DRC-judged under ``rules`` -- passing a tampered
    ``model_rules`` turns the checker into an encoding-bug detector.
    """
    build_rules = model_rules if model_rules is not None else rules
    ilp = build_routing_ilp(
        clip, build_rules, wire_cost=wire_cost, via_cost=via_cost
    )
    combos, n_path_combos, exhausted = enumerate_clip_patterns(
        clip,
        include_offdirection=include_offdirection,
        cycles=cycles,
        max_paths_per_net=max_paths_per_net,
        max_patterns=max_patterns,
    )

    report = EquivalenceReport(
        clip_name=clip.name,
        rule_name=rules.name,
        families=_families_in_play(clip, rules, include_offdirection),
        n_patterns=len(combos),
        n_path_patterns=n_path_combos,
        exhausted=exhausted,
    )
    observed: set[str] = set()
    witnesses: dict[tuple[str, str], SemanticsFinding] = {}

    def record(finding: SemanticsFinding) -> None:
        key = (finding.kind, finding.family)
        best = witnesses.get(key)
        if best is None or finding.sort_key() < best.sort_key():
            witnesses[key] = finding

    for combo_index, combo in enumerate(combos):
        routing = pattern_routing(clip, combo)
        violations = check_clip_routing(clip, rules, routing)
        clean = not violations
        for violation in violations:
            observed.add(VIOLATION_FAMILY.get(violation.kind, violation.kind))

        values = pattern_assignment(ilp, combo)
        feasible = values is not None and ilp.model.is_feasible(values)
        if feasible:
            report.n_feasible += 1
        if clean:
            report.n_clean += 1

        size = sum(pattern.size for pattern in combo)
        if feasible and not clean:
            for family in sorted(
                {
                    VIOLATION_FAMILY.get(v.kind, v.kind)
                    for v in violations
                }
            ):
                record(
                    SemanticsFinding(
                        kind="unsound",
                        family=family,
                        clip_name=clip.name,
                        rule_name=rules.name,
                        message=(
                            "ILP-feasible pattern violates DRC: "
                            + "; ".join(
                                sorted(str(v) for v in violations)
                            )
                        ),
                        pattern=_pattern_payload(combo),
                        violations=tuple(
                            sorted(str(v) for v in violations)
                        ),
                        size=size,
                    )
                )
        elif clean and not feasible and combo_index < n_path_combos:
            if values is None:
                family, why = "core", "pattern not representable in the ILP"
            else:
                row = _first_violated_row(ilp, values)
                family = "core" if row is None else _row_family(ilp, row)
                why = (
                    "assignment violates model row "
                    f"{row}: {ilp.model.constraints[row].expr!r} "
                    f"{ilp.model.constraints[row].sense} 0"
                    if row is not None
                    else "assignment rejected (bounds/integrality)"
                )
            record(
                SemanticsFinding(
                    kind="incomplete",
                    family=family,
                    clip_name=clip.name,
                    rule_name=rules.name,
                    message=f"DRC-clean pattern has no feasible encoding: {why}",
                    pattern=_pattern_payload(combo),
                    size=size,
                )
            )

    if solver_sweep:
        for finding in _solver_soundness_sweep(
            clip,
            rules,
            build_rules,
            wire_cost=wire_cost,
            via_cost=via_cost,
            cap=solver_cap,
        ):
            record(finding)

    report.observed = tuple(sorted(observed))
    report.findings = sorted(witnesses.values(), key=SemanticsFinding.sort_key)
    return report


def _solver_soundness_sweep(
    clip: Clip,
    rules: RuleConfig,
    build_rules: RuleConfig,
    *,
    wire_cost: float,
    via_cost: float,
    cap: int,
) -> list[SemanticsFinding]:
    """Enumerate every feasible arc support straight from the solver
    (no-good cuts over the e columns) and DRC-check each decoding.

    This covers the ILP's *entire* integer space -- including supports
    the pattern enumerator's one-cycle bound skips -- so soundness does
    not rest on the enumerator's decomposition argument.
    """
    from repro.ilp.model import Constraint, LinExpr
    from repro.ilp.status import SolveStatus
    from repro.router.solution import decode_solution

    ilp = build_routing_ilp(
        clip, build_rules, wire_cost=wire_cost, via_cost=via_cost
    )
    e_indices = sorted(
        {var.index for nv in ilp.nets for var in nv.e.values()}
    )
    findings: list[SemanticsFinding] = []
    for iteration in range(cap):
        solution = _solve(ilp.model)
        if solution.status is not SolveStatus.OPTIMAL:
            if solution.status is not SolveStatus.INFEASIBLE:
                findings.append(
                    SemanticsFinding(
                        kind="sweep_limit",
                        family="core",
                        clip_name=clip.name,
                        rule_name=rules.name,
                        message=(
                            "solver sweep stopped early with status "
                            f"{solution.status.name} after {iteration} supports"
                        ),
                    )
                )
            break
        routing = decode_solution(ilp, solution)
        violations = check_clip_routing(clip, rules, routing)
        if violations:
            findings.append(
                SemanticsFinding(
                    kind="unsound",
                    family=sorted(
                        VIOLATION_FAMILY.get(v.kind, v.kind)
                        for v in violations
                    )[0],
                    clip_name=clip.name,
                    rule_name=rules.name,
                    message=(
                        "solver-enumerated support violates DRC: "
                        + "; ".join(sorted(str(v) for v in violations))
                    ),
                    violations=tuple(sorted(str(v) for v in violations)),
                    size=sum(
                        1
                        for i in e_indices
                        if solution.values.get(i, 0.0) > 0.5
                    ),
                )
            )
        ones = [
            i for i in e_indices if solution.values.get(i, 0.0) > 0.5
        ]
        zeros = [
            i for i in e_indices if solution.values.get(i, 0.0) <= 0.5
        ]
        coefs = {i: 1.0 for i in zeros}
        coefs.update({i: -1.0 for i in ones})
        ilp.model.add(
            Constraint(LinExpr(coefs, float(len(ones) - 1)), ">=")
        )
    else:
        findings.append(
            SemanticsFinding(
                kind="sweep_limit",
                family="core",
                clip_name=clip.name,
                rule_name=rules.name,
                message=f"solver sweep hit the {cap}-support cap",
            )
        )
    return findings


def run_equivalence_matrix(
    rule_configs: Iterable[RuleConfig] | None = None,
    corpus: Iterable[MicroClip] | None = None,
    **kwargs,
) -> list[EquivalenceReport]:
    """Equivalence-check every (micro-clip, rule) pair, in fixed order."""
    from repro.eval.rule_configs import paper_rules

    rule_list = list(rule_configs) if rule_configs is not None else paper_rules()
    corpus_list = list(corpus) if corpus is not None else micro_corpus()
    reports = []
    for micro in corpus_list:
        for rules in rule_list:
            reports.append(
                check_equivalence(
                    micro.clip,
                    rules,
                    include_offdirection=micro.include_offdirection,
                    **kwargs,
                )
            )
    return reports


def matrix_to_dict(reports: list[EquivalenceReport]) -> dict:
    """Deterministic JSON payload for a matrix run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "equivalence_matrix",
        "ok": all(report.ok for report in reports),
        "n_reports": len(reports),
        "reports": [report.to_dict() for report in reports],
    }
