"""Clip infeasibility certification without building or solving the ILP.

Static checks on the routing graph *after* rule-driven arc removal
(unidirectional layers are inherent to :func:`build_graph`; via
restrictions and blockages prune further).  Two certificate kinds:

- **unreachable-pin** -- per-net reachability.  BFS from the net's
  source pin over exactly the arcs the ILP formulation would offer the
  net: physical arcs with neither endpoint blocked (obstacles + other
  nets' pin metal), shape arcs whose via-shape footprint avoids
  blockages, plus the zero-cost pin chains that let a net route
  through its own pin metal.  A sink none of whose access vertices is
  reached certifies infeasibility.

- **saturated-cut** -- counting over axis-aligned cuts.  A net *must*
  cross the cut when none of its pins spans it and its source lies on
  the other side of some sink.  Arc exclusivity gives each crossing
  net a distinct crossing arc, so ``demand > capacity`` certifies
  infeasibility.  For layer-interface (z) cuts under via-adjacency
  restriction, capacity is bounded by a clique-tiling argument: used
  via sites form an independent set of the blocking graph, and any
  independent set has at most one site per horizontal domino
  (orthogonal blocking) or per 2x2 tile (full blocking).

Both checks are relaxations of the ILP: any feasible routing survives
them, so a certificate is a *sound* proof of infeasibility (the
soundness contract is exercised by ``tests/test_analysis_certify.py``
against the real solver).  Cut checks are skipped when via shapes are
enabled, since shape traversals open crossing paths the counting
argument does not model.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.findings import InfeasibilityCertificate
from repro.clips.clip import Clip, ClipNet
from repro.router.graph import ArcKind, SwitchboxGraph, build_graph
from repro.router.rules import RuleConfig, ViaRestriction


def certify_infeasible(
    clip: Clip,
    rules: RuleConfig | None = None,
    graph: SwitchboxGraph | None = None,
) -> InfeasibilityCertificate | None:
    """Certify a (clip, rule) pair infeasible, or return ``None``.

    ``None`` means "not certified" -- the pair may still be infeasible
    for reasons only the solver can prove (the certifier is sound, not
    complete).
    """
    if rules is None:
        rules = RuleConfig()
    if graph is None:
        graph = build_graph(clip, rules)

    certificate = _certify_reachability(clip, rules, graph)
    if certificate is not None:
        return certificate
    if not rules.allow_via_shapes:
        certificate = _certify_cuts(clip, rules)
    return certificate


# -- reachability -----------------------------------------------------------


def _certify_reachability(
    clip: Clip, rules: RuleConfig, graph: SwitchboxGraph
) -> InfeasibilityCertificate | None:
    obstacle_vids = {graph.vid(*v) for v in clip.obstacles}
    pin_vids = {
        net.name: {
            graph.vid(*v) for pin in net.pins for v in pin.access
        }
        for net in clip.nets
    }
    for net in clip.nets:
        blocked = set(obstacle_vids)
        for other, vids in pin_vids.items():
            if other != net.name:
                blocked |= vids
        certificate = _certify_net(clip, rules, graph, net, blocked)
        if certificate is not None:
            return certificate
    return None


def _certify_net(
    clip: Clip,
    rules: RuleConfig,
    graph: SwitchboxGraph,
    net: ClipNet,
    blocked: set[int],
) -> InfeasibilityCertificate | None:
    # Via-shape placements unusable by this net (footprint blocked),
    # mirroring the formulation's per-net pruning.
    bad_reps = {
        inst.rep
        for inst in graph.shape_instances
        if any(member in blocked for member in inst.members)
    }
    # Pin chains: reaching one access vertex of a pin reaches them all.
    chain_groups: dict[int, list[tuple[int, ...]]] = {}
    for pin in net.pins:
        group = tuple(graph.vid(*v) for v in pin.access)
        for vid in group:
            chain_groups.setdefault(vid, []).append(group)

    # The supersource reaches every source access vertex through
    # virtual arcs, blocked or not; blocked vertices just have no
    # usable physical arcs (the formulation prunes them).
    start = [graph.vid(*v) for v in net.source.access]
    visited: set[int] = set(start)
    queue = deque(start)
    while queue:
        vid = queue.popleft()
        for group in chain_groups.get(vid, ()):
            for member in group:
                if member not in visited:
                    visited.add(member)
                    queue.append(member)
        if vid in blocked:
            continue  # all physical arcs at a blocked vertex are pruned
        for arc_index in graph.out_arcs.get(vid, ()):
            arc = graph.arcs[arc_index]
            if arc.head in visited or arc.head in blocked:
                continue
            if arc.kind is ArcKind.SHAPE and (
                arc.tail in bad_reps or arc.head in bad_reps
            ):
                continue
            visited.add(arc.head)
            queue.append(arc.head)

    for sink_no, sink in enumerate(net.sinks):
        sink_vids = {graph.vid(*v) for v in sink.access}
        if sink_vids & visited:
            continue
        fully_blocked = sink_vids <= blocked
        return InfeasibilityCertificate(
            kind="unreachable-pin",
            clip_name=clip.name,
            rule_name=rules.name,
            net_name=net.name,
            message=(
                f"sink {sink_no} is unreachable from the source through "
                f"the rule-pruned graph"
                + (" (every access vertex is blocked)" if fully_blocked else "")
            ),
            witness={
                "sink": sink_no,
                "n_access": len(sink_vids),
                "n_reached": len(visited),
                "access_blocked": fully_blocked,
            },
        )
    return None


# -- saturated cuts ---------------------------------------------------------


def _pin_side(pin_coords: list[int], cut: int) -> int:
    """-1 all below the cut, +1 all at/above, 0 spanning."""
    below = all(c < cut for c in pin_coords)
    above = all(c >= cut for c in pin_coords)
    if below:
        return -1
    if above:
        return 1
    return 0


def _must_cross(clip: Clip, axis: int, cut: int) -> list[str]:
    """Nets that provably need a physical arc across the cut."""
    names: list[str] = []
    for net in clip.nets:
        sides = []
        spans = False
        for pin in net.pins:
            side = _pin_side([v[axis] for v in pin.access], cut)
            if side == 0:
                spans = True  # pin metal crosses for free
                break
            sides.append(side)
        if spans:
            continue
        source_side = sides[0]
        if any(side != source_side for side in sides[1:]):
            names.append(net.name)
    return names


def _owners(clip: Clip) -> dict[tuple[int, int, int], set[str]]:
    """Pin-metal ownership: vertex -> nets whose pins cover it."""
    owners: dict[tuple[int, int, int], set[str]] = {}
    for net in clip.nets:
        for pin in net.pins:
            for vertex in pin.access:
                owners.setdefault(vertex, set()).add(net.name)
    return owners


def _usable_by_crossers(
    a: tuple[int, int, int],
    b: tuple[int, int, int],
    obstacles: frozenset,
    owners: dict[tuple[int, int, int], set[str]],
    crossers: set[str],
) -> bool:
    """Can any must-cross net use the arc a-b?

    A vertex covered by a net's pin metal is blocked for every other
    net, so both endpoints must be free or owned by one common
    must-cross net.
    """
    if a in obstacles or b in obstacles:
        return False
    allowed = crossers
    for vertex in (a, b):
        own = owners.get(vertex)
        if own is not None:
            allowed = allowed & own
            if not allowed:
                return False
    return True


def _certify_cuts(
    clip: Clip, rules: RuleConfig
) -> InfeasibilityCertificate | None:
    owners = _owners(clip)
    obstacles = clip.obstacles

    def certificate(axis_name, cut, crossers, capacity, detail):
        return InfeasibilityCertificate(
            kind="saturated-cut",
            clip_name=clip.name,
            rule_name=rules.name,
            message=(
                f"{len(crossers)} nets must cross the {axis_name}={cut} "
                f"cut but only {capacity} crossing {detail} are usable"
            ),
            witness={
                "axis": axis_name,
                "cut": cut,
                "demand": len(crossers),
                "capacity": capacity,
                "nets": sorted(crossers)[:8],
            },
        )

    # Wire cuts between adjacent columns (x) and rows (y).
    for axis, axis_name, extent in ((0, "x", clip.nx), (1, "y", clip.ny)):
        wire_layers = [
            z
            for z in range(clip.nz)
            if clip.horizontal[z] == (axis == 0)
        ]
        for cut in range(1, extent):
            crossers = set(_must_cross(clip, axis, cut))
            if not crossers:
                continue
            capacity = 0
            for z in wire_layers:
                other = clip.ny if axis == 0 else clip.nx
                for t in range(other):
                    if axis == 0:
                        a, b = (cut - 1, t, z), (cut, t, z)
                    else:
                        a, b = (t, cut - 1, z), (t, cut, z)
                    if _usable_by_crossers(a, b, obstacles, owners, crossers):
                        capacity += 1
            if len(crossers) > capacity:
                return certificate(axis_name, cut, crossers, capacity, "arcs")

    # Via cuts between adjacent layer slots.
    for cut in range(1, clip.nz):
        crossers = set(_must_cross(clip, 2, cut))
        if not crossers:
            continue
        sites = [
            (x, y)
            for y in range(clip.ny)
            for x in range(clip.nx)
            if _usable_by_crossers(
                (x, y, cut - 1), (x, y, cut), obstacles, owners, crossers
            )
        ]
        capacity = _via_capacity(sites, rules.via_restriction)
        if len(crossers) > capacity:
            return certificate("z", cut, crossers, capacity, "via sites")
    return None


def _via_capacity(
    sites: list[tuple[int, int]], restriction: ViaRestriction
) -> int:
    """Upper bound on simultaneously usable via sites.

    Adjacent usable sites are mutually exclusive under a via
    restriction, so any legal placement is an independent set of the
    blocking graph; tiles that induce cliques bound its size.
    """
    if restriction is ViaRestriction.NONE:
        return len(sites)
    if restriction is ViaRestriction.ORTHOGONAL:
        return len({(x // 2, y) for x, y in sites})
    return len({(x // 2, y // 2) for x, y in sites})
