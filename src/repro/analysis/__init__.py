"""Pre-solve static analysis: ILP model linting and clip infeasibility
certification (see ``docs/static_analysis.md``)."""

from repro.analysis.findings import (
    InfeasibilityCertificate,
    LintFinding,
    LintReport,
    Severity,
)
from repro.analysis.model_lint import lint_model, lint_routing_ilp
from repro.analysis.certify import certify_infeasible

__all__ = [
    "InfeasibilityCertificate",
    "LintFinding",
    "LintReport",
    "Severity",
    "lint_model",
    "lint_routing_ilp",
    "certify_infeasible",
]
