"""Pre-solve static analysis: ILP model linting, clip infeasibility
certification, and presolve model reduction (see
``docs/static_analysis.md``)."""

from repro.analysis.findings import (
    InfeasibilityCertificate,
    LintFinding,
    LintReport,
    Severity,
)
from repro.analysis.model_lint import lint_model, lint_routing_ilp
from repro.analysis.certify import certify_infeasible
from repro.analysis.decompose import Component, decompose_model
from repro.analysis.presolve import (
    PresolveResult,
    PresolveTrace,
    presolve_model,
    presolve_routing_ilp,
    solve_reduced,
)

__all__ = [
    "InfeasibilityCertificate",
    "LintFinding",
    "LintReport",
    "Severity",
    "lint_model",
    "lint_routing_ilp",
    "certify_infeasible",
    "Component",
    "decompose_model",
    "PresolveResult",
    "PresolveTrace",
    "presolve_model",
    "presolve_routing_ilp",
    "solve_reduced",
]
