"""Vectorized (CSR) twins of the model-reduction passes.

:class:`CsrWork` mirrors :class:`repro.analysis.reductions.Work` on
contiguous numpy arrays; every pass in :data:`CSR_PASSES` is the
vectorized twin of one object pass, implementing the *same* reduction
semantics: same tolerances, same visit order, same notes.  The object
passes stay the property-tested oracle (``tests/test_ilp_csr.py``
sweeps reduction equivalence), and arbitrary extra object passes still
run via the :func:`to_object_work` / :func:`load_object_work` bridge.

Design: each pass assumes a *compacted* state (no dead rows, no zeroed
entries, a fresh column index -- the driver compacts before every
pass, a no-op when nothing changed) and splits into

1. a **vectorized detector** that either proves the pass quiescent --
   the common case on a fixpoint's later iterations, costing a few
   array ops instead of a Python sweep -- or locates the first row or
   column where the object pass would act, and
2. an **exact scalar tail** that replays the object pass's logic from
   that point on, because reductions mutate bounds mid-sweep and the
   later decisions depend on the earlier rewrites.

Entry order within a row preserves the builder's emission order (the
object ``_Row`` dict order), so sequential float accumulations --
activity ranges via ``np.add.reduceat``, coefficient-tightening's
in-row updates -- see the same operand order as the oracle.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.analysis.reductions import (
    _NORM_DIGITS,
    _TOL,
    _Row,
    Work,
    _unused_variable_value,
)
from repro.ilp.csr import (
    _CODE_TO_SENSE,
    _SENSE_TO_CODE,
    SENSE_EQ,
    SENSE_GE,
    SENSE_LE,
    CsrModel,
)


def _row_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sums of an entry-aligned vector, summed left-to-right
    within each row (``np.add.reduceat`` reduces sequentially, so the
    result is bit-identical to the object passes' Python loops)."""
    if len(indptr) == 1:
        return np.zeros(0, dtype=np.float64)
    padded = np.append(values, 0.0)
    sums = np.add.reduceat(padded, indptr[:-1])
    sums[np.diff(indptr) == 0] = 0.0
    return sums


def _row_counts(flags: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row count of True entries."""
    return _row_sums(flags.astype(np.float64), indptr).astype(np.int64)


class _Extra:
    """A row appended mid-pass (merge passes); folded in at compact.

    ``rid`` is the row's stable diagnostic id -- the index the same row
    would occupy in the object ``Work.rows`` list, which only ever
    grows.  Compaction renumbers physical rows but preserves ``rid``,
    so infeasibility messages for unnamed rows quote the same index the
    object pipeline would.
    """

    __slots__ = ("cols", "vals", "sense", "rhs", "name", "live", "rid")

    def __init__(
        self,
        cols: list[int],
        vals: list[float],
        sense: int,
        rhs: float,
        name: str,
        rid: int,
    ):
        self.cols = cols
        self.vals = vals
        self.sense = sense
        self.rhs = rhs
        self.name = name
        self.live = True
        self.rid = rid


class CsrWork:
    """Mutable columnar working representation of a model.

    Row state is CSR with in-place deletion: ``data == 0.0`` marks a
    removed entry, ``row_live`` a removed row, and merge passes append
    :class:`_Extra` rows; :meth:`compact` folds all of that back into
    dense arrays (preserving row order: surviving rows first, then
    surviving extras -- exactly the object ``Work.rows`` list order)
    and rebuilds the column index.  Scalar mutators (:meth:`fix_var`,
    :meth:`tighten_lb`/:meth:`tighten_ub`) replicate the object
    :class:`~repro.analysis.reductions.Work` methods line for line.
    """

    __slots__ = (
        "name",
        "var_names",
        "lb",
        "ub",
        "integer",
        "obj",
        "obj_const",
        "fixed",
        "counts",
        "infeasible_reason",
        "indptr",
        "indices",
        "data",
        "senses",
        "rhs",
        "row_live",
        "row_nnz",
        "row_names",
        "row_ids",
        "_next_row_id",
        "extras",
        "generation",
        "col_entry",
        "col_ptr",
        "entry_row",
        "_dirty",
        "_singleton_heap",
        "_witness_handoff",
    )

    def __init__(self, csr: CsrModel):
        self.name = csr.name
        self.var_names = list(csr.var_names)
        self.lb = csr.lb.astype(np.float64, copy=True)
        self.ub = csr.ub.astype(np.float64, copy=True)
        self.integer = csr.integer.astype(bool, copy=True)
        self.obj = csr.obj.astype(np.float64, copy=True)
        self.obj_const = float(csr.obj_const)
        self.fixed: dict[int, float] = {}
        self.counts: dict[str, int] = {}
        self.infeasible_reason: str | None = None
        self.indptr = csr.indptr.astype(np.int64, copy=True)
        self.indices = csr.indices.astype(np.int64, copy=True)
        self.data = csr.data.astype(np.float64, copy=True)
        self.senses = csr.senses.astype(np.int8, copy=True)
        self.rhs = (-csr.row_const).astype(np.float64)
        self.row_live = np.ones(csr.n_rows, dtype=bool)
        self.row_names = list(csr.row_names) or [""] * csr.n_rows
        # Stable diagnostic row ids (object ``Work.rows`` indices):
        # compaction renumbers physical rows, these do not move.
        self.row_ids = np.arange(csr.n_rows, dtype=np.int64)
        self._next_row_id = csr.n_rows
        self.extras: list[_Extra] = []
        # Bumped on every semantic mutation (fix, tighten, row edit);
        # the driver skips passes that last ran clean at the current
        # generation -- rerunning a deterministic pass on unchanged
        # state is guaranteed to fire nothing.  compact() does not
        # count: it is a physical re-layout of identical state.
        self.generation = 0
        # Builders never emit zero coefficients, but tolerate them.
        self._dirty = bool(np.any(self.data == 0.0))
        self._singleton_heap: list[int] | None = None
        # Conflict-witness handoff from a quiescent clique merge to the
        # implication merge that follows it (see csr_clique_merge).
        self._witness_handoff: dict[int, set[int]] | None = None
        self.row_nnz = np.zeros(0, dtype=np.int64)
        self.col_entry = np.zeros(0, dtype=np.int64)
        self.col_ptr = np.zeros(0, dtype=np.int64)
        self.entry_row = np.zeros(0, dtype=np.int64)
        self._reindex()

    # -- bookkeeping --------------------------------------------------------

    @property
    def infeasible(self) -> bool:
        return self.infeasible_reason is not None

    @property
    def n_vars(self) -> int:
        return len(self.var_names)

    @property
    def n_rows(self) -> int:
        return len(self.senses)

    def note(self, pass_name: str, n: int = 1) -> None:
        self.counts[pass_name] = self.counts.get(pass_name, 0) + n

    def mark_infeasible(self, reason: str) -> None:
        if self.infeasible_reason is None:
            self.infeasible_reason = reason

    def _reindex(self) -> None:
        """Recompute the per-row nonzero counts and the column index
        (entry positions grouped by column) from the current arrays."""
        n_rows = len(self.senses)
        self.entry_row = np.repeat(
            np.arange(n_rows, dtype=np.int64), np.diff(self.indptr)
        )
        live_entry = self.data != 0.0
        self.row_nnz = _row_counts(live_entry, self.indptr)
        self.col_entry = np.argsort(self.indices, kind="stable").astype(
            np.int64
        )
        counts = np.bincount(self.indices, minlength=self.n_vars)
        self.col_ptr = np.zeros(self.n_vars + 1, dtype=np.int64)
        np.cumsum(counts, out=self.col_ptr[1:])

    def compact(self) -> None:
        """Drop dead rows/entries, fold extras in, rebuild the index.

        Row order is preserved (surviving old rows, then surviving
        extras in append order) and entry order within each row is
        preserved -- matching the object ``Work.rows`` list the same
        sequence of object passes would have produced.  No-op when
        nothing changed since the last compact.
        """
        if not self._dirty:
            return
        live_entry = (self.data != 0.0) & self.row_live[self.entry_row]
        keep_rows = np.flatnonzero(self.row_live)
        entry_counts = _row_counts(live_entry, self.indptr)[keep_rows]
        new_indices = self.indices[live_entry]
        new_data = self.data[live_entry]
        new_senses = self.senses[keep_rows]
        new_rhs = self.rhs[keep_rows]
        keep_list = keep_rows.tolist()
        new_names = [self.row_names[r] for r in keep_list]
        new_ids = self.row_ids[keep_rows]
        live_extras = [ex for ex in self.extras if ex.live]
        if live_extras:
            extra_cols = np.asarray(
                [j for ex in live_extras for j in ex.cols], dtype=np.int64
            )
            extra_vals = np.asarray(
                [c for ex in live_extras for c in ex.vals], dtype=np.float64
            )
            new_indices = np.concatenate((new_indices, extra_cols))
            new_data = np.concatenate((new_data, extra_vals))
            new_senses = np.concatenate(
                (
                    new_senses,
                    np.asarray([ex.sense for ex in live_extras], dtype=np.int8),
                )
            )
            new_rhs = np.concatenate(
                (
                    new_rhs,
                    np.asarray([ex.rhs for ex in live_extras], dtype=np.float64),
                )
            )
            new_names.extend(ex.name for ex in live_extras)
            new_ids = np.concatenate(
                (
                    new_ids,
                    np.asarray([ex.rid for ex in live_extras], dtype=np.int64),
                )
            )
            entry_counts = np.concatenate(
                (
                    entry_counts,
                    np.asarray(
                        [len(ex.cols) for ex in live_extras], dtype=np.int64
                    ),
                )
            )
        self.indices = new_indices
        self.data = new_data
        self.senses = new_senses
        self.rhs = new_rhs
        self.row_names = new_names
        self.row_ids = new_ids
        self.indptr = np.zeros(len(new_senses) + 1, dtype=np.int64)
        np.cumsum(entry_counts, out=self.indptr[1:])
        self.row_live = np.ones(len(new_senses), dtype=bool)
        self.extras = []
        self._dirty = False
        self._reindex()

    # -- row accessors (scalar tails) ---------------------------------------

    def is_live(self, r: int) -> bool:
        if r < len(self.senses):
            return bool(self.row_live[r])
        return self.extras[r - len(self.senses)].live

    def row_items(self, r: int) -> list[tuple[int, float]]:
        """Live ``(col, coef)`` pairs of row ``r`` in entry order."""
        if r < len(self.senses):
            s, e = self.indptr[r], self.indptr[r + 1]
            cols = self.indices[s:e].tolist()
            vals = self.data[s:e].tolist()
            return [(j, c) for j, c in zip(cols, vals) if c != 0.0]
        ex = self.extras[r - len(self.senses)]
        return [(j, c) for j, c in zip(ex.cols, ex.vals) if c != 0.0]

    def row_sense(self, r: int) -> int:
        if r < len(self.senses):
            return int(self.senses[r])
        return self.extras[r - len(self.senses)].sense

    def row_rhs(self, r: int) -> float:
        if r < len(self.senses):
            return float(self.rhs[r])
        return self.extras[r - len(self.senses)].rhs

    def row_name(self, r: int) -> str:
        if r < len(self.senses):
            return self.row_names[r]
        return self.extras[r - len(self.senses)].name

    def row_id(self, r: int) -> int:
        """Stable diagnostic id of physical row ``r`` (the index the
        row occupies in the object ``Work.rows`` list)."""
        if r < len(self.senses):
            return int(self.row_ids[r])
        return self.extras[r - len(self.senses)].rid

    def add_extra_row(
        self,
        cols: list[int],
        vals: list[float],
        sense: int,
        rhs: float,
        name: str,
    ) -> int:
        """Append a merged row; returns its id (``>= n_rows``)."""
        self.extras.append(
            _Extra(cols, vals, sense, rhs, name, self._next_row_id)
        )
        self._next_row_id += 1
        self._dirty = True
        self.generation += 1
        return len(self.senses) + len(self.extras) - 1

    def remove_row(self, r: int) -> None:
        if r < len(self.senses):
            if self.row_live[r]:
                self.row_live[r] = False
                self._dirty = True
                self.generation += 1
        else:
            ex = self.extras[r - len(self.senses)]
            if ex.live:
                ex.live = False
                self._dirty = True
                self.generation += 1

    # -- scalar mutators (object Work mirrors) ------------------------------

    def fix_var(self, j: int, value: float, reason: str) -> bool:
        """Exact mirror of :meth:`Work.fix_var` on the column index."""
        if j in self.fixed:
            if abs(self.fixed[j] - value) > 1e-6:
                self.mark_infeasible(
                    f"variable {self.var_names[j]} fixed to conflicting "
                    f"values {self.fixed[j]:g} and {value:g} ({reason})"
                )
                return False
            return True
        if self.integer[j]:
            snapped = round(value)
            if abs(snapped - value) > 1e-6:
                self.mark_infeasible(
                    f"integer variable {self.var_names[j]} forced to "
                    f"fractional value {value:g} ({reason})"
                )
                return False
            value = float(snapped)
        if value < self.lb[j] - 1e-6 or value > self.ub[j] + 1e-6:
            self.mark_infeasible(
                f"variable {self.var_names[j]} forced to {value:g} outside "
                f"bounds [{self.lb[j]:g}, {self.ub[j]:g}] ({reason})"
            )
            return False
        self.fixed[j] = value
        self.lb[j] = self.ub[j] = value
        self.obj_const += self.obj[j] * value
        self.obj[j] = 0.0
        self.generation += 1
        for p in self.col_entry[self.col_ptr[j] : self.col_ptr[j + 1]].tolist():
            coef = self.data[p]
            if coef == 0.0:
                continue
            r = int(self.entry_row[p])
            if not self.row_live[r]:
                continue
            self.rhs[r] -= coef * value
            self.data[p] = 0.0
            self._dirty = True
            self.row_nnz[r] -= 1
            if self.row_nnz[r] == 0:
                self._finish_empty_row(r)
            elif (
                self.row_nnz[r] == 1 and self._singleton_heap is not None
            ):
                heapq.heappush(self._singleton_heap, r)
        for k, ex in enumerate(self.extras):
            if not ex.live or j not in ex.cols:
                continue
            i = ex.cols.index(j)
            ex.rhs -= ex.vals[i] * value
            del ex.cols[i]
            del ex.vals[i]
            if not ex.cols:
                self._finish_empty_row(len(self.senses) + k)
        self.note("fix")
        return True

    def _finish_empty_row(self, r: int) -> None:
        sense = self.row_sense(r)
        rhs = self.row_rhs(r)
        violated = (
            (sense == SENSE_LE and rhs < -_TOL)
            or (sense == SENSE_GE and rhs > _TOL)
            or (sense == SENSE_EQ and abs(rhs) > _TOL)
        )
        if violated:
            self.mark_infeasible(
                f"row {self.row_name(r) or self.row_id(r)} reduced to 0 "
                f"{_CODE_TO_SENSE[sense]} {rhs:g}"
            )
        self.remove_row(r)

    def tighten_lb(self, j: int, lb: float) -> bool:
        if self.integer[j]:
            lb = math.ceil(lb - 1e-6)
        if lb <= self.lb[j] + _TOL:
            return False
        if lb > self.ub[j] + 1e-6:
            self.mark_infeasible(
                f"variable {self.var_names[j]}: implied lb {lb:g} exceeds "
                f"ub {self.ub[j]:g}"
            )
            return True
        self.lb[j] = lb
        self.generation += 1
        self.note("bound-propagation")
        if abs(self.ub[j] - self.lb[j]) <= _TOL:
            self.fix_var(j, float(self.lb[j]), "bounds closed")
        return True

    def tighten_ub(self, j: int, ub: float) -> bool:
        if self.integer[j]:
            ub = math.floor(ub + 1e-6)
        if ub >= self.ub[j] - _TOL:
            return False
        if ub < self.lb[j] - 1e-6:
            self.mark_infeasible(
                f"variable {self.var_names[j]}: implied ub {ub:g} below "
                f"lb {self.lb[j]:g}"
            )
            return True
        self.ub[j] = ub
        self.generation += 1
        self.note("bound-propagation")
        if abs(self.ub[j] - self.lb[j]) <= _TOL:
            self.fix_var(j, float(self.lb[j]), "bounds closed")
        return True

    def activity_range(self, r: int) -> tuple[float, float]:
        lo = hi = 0.0
        lb, ub = self.lb, self.ub
        for j, coef in self.row_items(r):
            a, b = coef * lb[j], coef * ub[j]
            lo += min(a, b)
            hi += max(a, b)
        return lo, hi


# -- passes -----------------------------------------------------------------
#
# All passes require a compacted state on entry (the driver guarantees
# it); each mirrors its object twin's semantics exactly, including the
# sweep order dependencies spelled out in reductions.py.


def csr_singleton_rows(work: CsrWork) -> int:
    """Vectorized twin of ``pass_singleton_rows``.

    The object pass is a forward sweep that also catches rows *newly*
    reduced to one variable at indices ahead of the sweep pointer; a
    min-heap fed by :meth:`CsrWork.fix_var` replays exactly that: a
    new singleton is processed iff its index is past the pointer.
    """
    candidates = np.flatnonzero(work.row_nnz == 1).tolist()
    if not candidates:
        work._singleton_heap = None
        return 0
    heap = candidates
    heapq.heapify(heap)
    work._singleton_heap = heap
    changed = 0
    pointer = -1
    try:
        while heap:
            if work.infeasible:
                break
            r = heapq.heappop(heap)
            if r <= pointer or not work.row_live[r]:
                continue
            pointer = r
            if work.row_nnz[r] != 1:
                continue
            ((j, coef),) = work.row_items(r)
            if abs(coef) < _TOL:
                work._finish_empty_row(r)
                continue
            bound = work.row_rhs(r) / coef
            if work.senses[r] == SENSE_EQ:
                work.remove_row(r)
                work.fix_var(
                    j,
                    bound,
                    f"singleton equality row "
                    f"{work.row_name(r) or work.row_id(r)}",
                )
                changed += 1
                work.note("singleton-row")
                continue
            upper = (work.senses[r] == SENSE_LE) == (coef > 0)
            work.remove_row(r)
            if upper:
                work.tighten_ub(j, bound)
            else:
                work.tighten_lb(j, bound)
            work.note("singleton-row")
            changed += 1
    finally:
        work._singleton_heap = None
    return changed


def csr_bound_propagation(work: CsrWork) -> int:
    """Vectorized twin of ``pass_bound_propagation``.

    Activity ranges, infeasibility/redundancy gates, and the would-a-
    tighten-fire predicate are computed for every row at once.  Rows
    before the first state-changing row saw exactly the pass-start
    bounds, so their redundancy removals apply vectorized; from the
    first tightening (or infeasible) row on, the object sweep replays
    scalar because each tighten shifts later rows' activity ranges.
    """
    if not len(work.senses):
        return 0
    lbj = work.lb[work.indices]
    ubj = work.ub[work.indices]
    a = work.data * lbj
    b = work.data * ubj
    term_lo = np.minimum(a, b)
    term_hi = np.maximum(a, b)
    lo = _row_sums(term_lo, work.indptr)
    hi = _row_sums(term_hi, work.indptr)
    rhs = work.rhs
    eligible = work.row_nnz >= 2
    le_rows = eligible & (work.senses == SENSE_LE)
    ge_rows = eligible & (work.senses == SENSE_GE)
    eq_rows = eligible & (work.senses == SENSE_EQ)
    with np.errstate(invalid="ignore"):
        infeas = (
            (le_rows & (lo > rhs + _TOL))
            | (ge_rows & (hi < rhs - _TOL))
            | (eq_rows & ((lo > rhs + _TOL) | (hi < rhs - _TOL)))
        )
        redundant = ~infeas & (
            (le_rows & (hi <= rhs + _TOL))
            | (ge_rows & (lo >= rhs - _TOL))
            | (eq_rows & (hi - lo <= _TOL))
        )
        # Would-tighten predicate per entry, mirroring tighten_lb/ub
        # (integer rounding first, then the improvement gate).
        row_of = work.entry_row
        active_entry = (
            (eligible & ~infeas & ~redundant)[row_of]
            & (np.abs(work.data) >= _TOL)
        )
        le_like = (work.senses != SENSE_GE)[row_of] & np.isfinite(lo)[row_of]
        ge_like = (work.senses != SENSE_LE)[row_of] & np.isfinite(hi)[row_of]
        pos = work.data > 0
        int_j = work.integer[work.indices]
        tighten_entry = np.zeros(len(work.data), dtype=bool)
        for like, use_term, toward_ub in (
            (le_like, term_lo, True),
            (ge_like, term_hi, False),
        ):
            mask = active_entry & like
            if not np.any(mask):
                continue
            limit = rhs[row_of] - (
                (lo if toward_ub else hi)[row_of] - use_term
            )
            bound = limit / work.data
            # coef > 0 tightens toward_ub's bound, coef < 0 the other.
            hits_ub = pos == toward_ub
            cand_ub = np.where(int_j, np.floor(bound + 1e-6), bound)
            cand_lb = np.where(int_j, np.ceil(bound - 1e-6), bound)
            fires = np.where(
                hits_ub,
                cand_ub < (work.ub[work.indices] - _TOL),
                cand_lb > (work.lb[work.indices] + _TOL),
            )
            tighten_entry |= mask & fires
    tighten_rows = np.zeros(len(work.senses), dtype=bool)
    if np.any(tighten_entry):
        tighten_rows[row_of[tighten_entry]] = True
    effectful = infeas | tighten_rows
    first = (
        int(np.flatnonzero(effectful)[0])
        if np.any(effectful)
        else len(work.senses)
    )
    changed = 0
    for r in np.flatnonzero(redundant[:first]).tolist():
        work.remove_row(r)
        work.note("redundant-row")
        changed += 1
    # Exact object sweep from the first effectful row on.
    for r in range(first, len(work.senses)):
        if work.infeasible:
            break
        if not work.row_live[r] or work.row_nnz[r] < 2:
            continue
        r_lo, r_hi = work.activity_range(r)
        r_rhs = float(work.rhs[r])
        sense = int(work.senses[r])
        if sense == SENSE_LE:
            if r_lo > r_rhs + _TOL:
                name = work.row_names[r] or work.row_id(r)
                work.mark_infeasible(
                    f"row {name}: min activity {r_lo:g} > rhs {r_rhs:g}"
                )
                return changed + 1
            if r_hi <= r_rhs + _TOL:
                work.remove_row(r)
                work.note("redundant-row")
                changed += 1
                continue
        elif sense == SENSE_GE:
            if r_hi < r_rhs - _TOL:
                name = work.row_names[r] or work.row_id(r)
                work.mark_infeasible(
                    f"row {name}: max activity {r_hi:g} < rhs {r_rhs:g}"
                )
                return changed + 1
            if r_lo >= r_rhs - _TOL:
                work.remove_row(r)
                work.note("redundant-row")
                changed += 1
                continue
        else:
            if r_lo > r_rhs + _TOL or r_hi < r_rhs - _TOL:
                name = work.row_names[r] or work.row_id(r)
                work.mark_infeasible(
                    f"row {name}: activity [{r_lo:g}, {r_hi:g}] "
                    f"excludes rhs {r_rhs:g}"
                )
                return changed + 1
            if r_hi - r_lo <= _TOL:
                work.remove_row(r)
                work.note("redundant-row")
                changed += 1
                continue
        changed += _csr_propagate_row_bounds(work, r, r_lo, r_hi)
    return changed


def _csr_propagate_row_bounds(
    work: CsrWork, r: int, lo: float, hi: float
) -> int:
    """Exact mirror of ``_propagate_row_bounds`` on CSR storage."""
    changed = 0
    sense = int(work.senses[r])
    le_like = sense in (SENSE_LE, SENSE_EQ)
    ge_like = sense in (SENSE_GE, SENSE_EQ)
    n_fixed_before = len(work.fixed)
    s, e = int(work.indptr[r]), int(work.indptr[r + 1])
    for p in range(s, e):
        coef = float(work.data[p])
        if abs(coef) < _TOL:
            continue
        if len(work.fixed) != n_fixed_before:
            # fix_var rewrote this row under us (see the object twin).
            break
        j = int(work.indices[p])
        term_lo = min(coef * work.lb[j], coef * work.ub[j])
        term_hi = max(coef * work.lb[j], coef * work.ub[j])
        rhs = float(work.rhs[r])
        if le_like and not math.isinf(lo):
            limit = rhs - (lo - term_lo)
            if coef > 0:
                if work.tighten_ub(j, limit / coef):
                    changed += 1
            else:
                if work.tighten_lb(j, limit / coef):
                    changed += 1
        if work.infeasible:
            return changed
        if ge_like and not math.isinf(hi):
            limit = float(work.rhs[r]) - (hi - term_hi)
            if coef > 0:
                if work.tighten_lb(j, limit / coef):
                    changed += 1
            else:
                if work.tighten_ub(j, limit / coef):
                    changed += 1
        if work.infeasible:
            return changed
    return changed


def csr_coefficient_tightening(work: CsrWork) -> int:
    """Vectorized twin of ``pass_coefficient_tightening``.

    Rows are independent here (only the row's own coefficients and rhs
    change, never bounds), so the detector flags rows where the first
    in-row update would fire under pass-start values and only those
    rows replay the object's sequential in-row loop.
    """
    if not len(work.senses):
        return 0
    sign_row = np.where(work.senses == SENSE_GE, -1.0, 1.0)
    row_of = work.entry_row
    c = sign_row[row_of] * work.data
    with np.errstate(invalid="ignore"):
        term_hi = np.maximum(c * work.lb[work.indices], c * work.ub[work.indices])
        hi_total = _row_sums(term_hi, work.indptr)
        rhs_s = sign_row * work.rhs
        active_row = (
            (work.senses != SENSE_EQ)
            & (work.row_nnz >= 2)
            & np.isfinite(hi_total)
            & (hi_total > rhs_s + _TOL)
        )
        binary_j = (
            work.integer[work.indices]
            & (work.lb[work.indices] == 0.0)
            & (work.ub[work.indices] == 1.0)
        )
        others_hi = hi_total[row_of] - np.maximum(c, 0.0)
        cand = (
            active_row[row_of]
            & binary_j
            & (c > _TOL)
            & (others_hi <= rhs_s[row_of] - _TOL)
            & (c > (rhs_s[row_of] - others_hi) + _TOL)
        )
    if not np.any(cand):
        return 0
    changed = 0
    for r in np.unique(row_of[cand]).tolist():
        if work.infeasible:
            break
        sign = float(sign_row[r])
        rhs = sign * float(work.rhs[r])
        hi_total_r = 0.0
        s, e = int(work.indptr[r]), int(work.indptr[r + 1])
        for p in range(s, e):
            if work.data[p] == 0.0:
                continue
            cc = sign * float(work.data[p])
            j = int(work.indices[p])
            hi_total_r += max(cc * work.lb[j], cc * work.ub[j])
        for p in range(s, e):
            if work.data[p] == 0.0:
                continue
            j = int(work.indices[p])
            if (
                not work.integer[j]
                or work.lb[j] != 0.0
                or work.ub[j] != 1.0
            ):
                continue
            cc = sign * float(work.data[p])
            t_hi = max(cc, 0.0)
            others = hi_total_r - t_hi
            if cc > _TOL and others <= rhs - _TOL:
                slack = rhs - others
                if cc > slack + _TOL:
                    new_c = cc - (rhs - others)
                    work.data[p] = sign * new_c
                    rhs = others
                    work.rhs[r] = sign * rhs
                    hi_total_r = others + max(new_c, 0.0)
                    work.generation += 1
                    work.note("coefficient-tightening")
                    changed += 1
    return changed


def csr_duplicate_rows(work: CsrWork) -> int:
    """Vectorized twin of ``pass_duplicate_rows``.

    Support signatures bucket vectorized (sorted column bytes); the
    scale-normalized coefficient signature -- whose ``round()`` must
    match the object pass bit for bit -- runs in Python only on rows
    whose support actually collides.
    """
    n_rows = len(work.senses)
    if not n_rows:
        return 0
    order = np.lexsort((work.indices, work.entry_row))
    sorted_cols = work.indices[order]
    sorted_vals = work.data[order]
    indptr = work.indptr.tolist()
    buckets: dict[bytes, list[int]] = {}
    for r in range(n_rows):
        s, e = indptr[r], indptr[r + 1]
        if s == e:
            continue
        buckets.setdefault(sorted_cols[s:e].tobytes(), []).append(r)
    colliding = sorted(
        r for members in buckets.values() if len(members) > 1 for r in members
    )
    if not colliding:
        return 0
    groups: dict[tuple, list[tuple[int, float]]] = {}
    senses = work.senses.tolist()
    rhs_list = work.rhs.tolist()
    for r in colliding:
        s, e = indptr[r], indptr[r + 1]
        support = sorted_cols[s:e].tobytes()
        vals = sorted_vals[s:e].tolist()
        pivot = vals[0]
        scale = 1.0 / pivot
        coefs = tuple(round(v * scale, _NORM_DIGITS) for v in vals)
        sense = senses[r]
        if pivot < 0 and sense != SENSE_EQ:
            sense = SENSE_LE if sense == SENSE_GE else SENSE_GE
        key = (support, coefs, sense)
        groups.setdefault(key, []).append(
            (r, round(rhs_list[r] * scale, _NORM_DIGITS))
        )
    changed = 0
    for (_, _, sense), members in groups.items():
        if len(members) < 2:
            continue
        if sense == SENSE_LE:
            keep = min(members, key=lambda item: (item[1], item[0]))
        elif sense == SENSE_GE:
            keep = max(members, key=lambda item: (item[1], -item[0]))
        else:
            keep = members[0]
        for r, row_rhs in members:
            if r == keep[0]:
                continue
            if sense == SENSE_EQ and abs(row_rhs - keep[1]) > _TOL:
                work.mark_infeasible(
                    f"equality rows {work.row_id(keep[0])} and "
                    f"{work.row_id(r)} share coefficients "
                    f"but need rhs {keep[1]:g} and {row_rhs:g}"
                )
                return changed + 1
            work.remove_row(r)
            work.note("duplicate-row")
            changed += 1
    return changed


def _unit_packing_mask(work: CsrWork) -> np.ndarray:
    """Rows that are ``<= 1`` with unit coefficients over nonnegative
    binaries (vectorized ``_is_unit_packing_row`` over all rows)."""
    bin_j = work.integer & (work.lb == 0.0) & (work.ub == 1.0)
    good = (np.abs(work.data - 1.0) <= _TOL) & bin_j[work.indices]
    return (
        (work.senses == SENSE_LE)
        & (np.abs(work.rhs - 1.0) <= _TOL)
        & (work.row_nnz >= 2)
        & (_row_counts(good, work.indptr) == work.row_nnz)
    )


def _is_unit_packing_row_csr(work: CsrWork, r: int) -> bool:
    """Scalar re-check against the *current* (possibly rewritten) row."""
    if work.row_sense(r) != SENSE_LE or abs(work.row_rhs(r) - 1.0) > _TOL:
        return False
    items = work.row_items(r)
    if len(items) < 2:
        return False
    return all(abs(c - 1.0) <= _TOL for _, c in items) and all(
        work.integer[j] and work.lb[j] == 0.0 and work.ub[j] == 1.0
        for j, _ in items
    )


def csr_forced_subset(work: CsrWork) -> int:
    """Vectorized twin of ``pass_forced_subset``.

    The detector flags rows that could force one unit into packed
    binaries under pass-start bounds; flagged rows replay the object
    logic scalar, and the first actual fix switches to a full scalar
    sweep of the remaining rows (fixes shift later rows' activity)."""
    n_rows = len(work.senses)
    if not n_rows:
        return 0
    packing_mask = _unit_packing_mask(work)
    if not np.any(packing_mask):
        return 0
    bin_j = work.integer & (work.lb == 0.0) & (work.ub == 1.0)
    row_of = work.entry_row
    in_packing = np.zeros(work.n_vars, dtype=bool)
    in_packing[work.indices[packing_mask[row_of]]] = True
    flagged = np.zeros(n_rows, dtype=bool)
    for sign in (1.0, -1.0):
        a = sign * work.data
        forced_e = (np.abs(a - 1.0) <= _TOL) & bin_j[work.indices]
        with np.errstate(invalid="ignore"):
            hi_e = np.where(
                a > 0,
                a * work.ub[work.indices],
                a * work.lb[work.indices],
            )
            others_max = _row_sums(np.where(forced_e, 0.0, hi_e), work.indptr)
            r_low = (sign * work.rhs) - others_max
            dir_ok = (work.senses == SENSE_EQ) | (
                work.senses == (SENSE_GE if sign > 0 else SENSE_LE)
            )
            flagged |= (
                dir_ok
                & (work.row_nnz > 0)
                & (_row_counts(forced_e, work.indptr) > 0)
                & (_row_counts(forced_e & ~in_packing[work.indices], work.indptr) == 0)
                & np.isfinite(others_max)
                & (r_low >= 1.0 - _TOL)
            )
    if not np.any(flagged):
        return 0
    packing: dict[int, set[int]] = {}
    for r in np.flatnonzero(packing_mask).tolist():
        for j, _ in work.row_items(r):
            packing.setdefault(j, set()).add(r)
    changed = 0
    full_scan = False
    n_fixed0 = len(work.fixed)
    for r in range(n_rows):
        if work.infeasible:
            break
        if not full_scan and not flagged[r]:
            continue
        if not work.row_live[r] or work.row_nnz[r] == 0:
            continue
        sense = int(work.senses[r])
        directions = []
        if sense in (SENSE_EQ, SENSE_GE):
            directions.append(1.0)
        if sense in (SENSE_EQ, SENSE_LE):
            directions.append(-1.0)
        for sign in directions:
            if not work.row_live[r]:
                break
            forced: list[int] = []
            others_max = 0.0
            bounded = True
            for j, coef in work.row_items(r):
                a = sign * coef
                if (
                    abs(a - 1.0) <= _TOL
                    and work.integer[j]
                    and work.lb[j] == 0.0
                    and work.ub[j] == 1.0
                ):
                    forced.append(j)
                else:
                    hi = work.ub[j] if a > 0 else work.lb[j]
                    if math.isinf(hi):
                        bounded = False
                        break
                    others_max += a * hi
            if not bounded or not forced:
                continue
            r_low = sign * float(work.rhs[r]) - others_max
            if r_low < 1.0 - _TOL:
                continue
            common: set[int] | None = None
            for j in forced:
                rows_j = packing.get(j)
                if not rows_j:
                    common = None
                    break
                common = set(rows_j) if common is None else common & rows_j
                if not common:
                    break
            if not common:
                continue
            if r_low > 1.0 + _TOL:
                work.mark_infeasible(
                    f"row {work.row_names[r] or work.row_id(r)} "
                    f"forces {r_low:g} units "
                    "into variables a packing row caps at one"
                )
                return changed + 1
            forced_set = set(forced)
            for w in sorted(common):
                if not work.is_live(w) or not _is_unit_packing_row_csr(work, w):
                    continue
                for j in [
                    k for k, _ in work.row_items(w) if k not in forced_set
                ]:
                    if j in work.fixed or work.infeasible:
                        continue
                    work.fix_var(j, 0.0, "forced-subset exclusion")
                    work.note("forced-subset")
                    changed += 1
        if len(work.fixed) != n_fixed0:
            full_scan = True
    return changed


def csr_dual_fixing(work: CsrWork) -> int:
    """Vectorized twin of ``pass_dual_fixing``: per-column safety flags
    via entry bincounts, exact scalar sweep from the first flagged
    column (a fix can empty rows and unlock later columns)."""
    n = work.n_vars
    if not len(work.senses):
        return 0
    sense_e = work.senses[work.entry_row]
    d = work.data
    bad_down = (
        (sense_e == SENSE_EQ)
        | ((sense_e == SENSE_LE) & (d < 0.0))
        | ((sense_e == SENSE_GE) & (d > 0.0))
    )
    bad_up = (
        (sense_e == SENSE_EQ)
        | ((sense_e == SENSE_LE) & (d > 0.0))
        | ((sense_e == SENSE_GE) & (d < 0.0))
    )
    cols = work.indices
    n_rows_j = np.bincount(cols, minlength=n)
    bad_down_j = np.bincount(cols[bad_down], minlength=n) > 0
    bad_up_j = np.bincount(cols[bad_up], minlength=n) > 0
    fixed_mask = np.zeros(n, dtype=bool)
    if work.fixed:
        fixed_mask[
            np.fromiter(work.fixed.keys(), dtype=np.int64, count=len(work.fixed))
        ] = True
    down = (work.obj >= 0.0) & np.isfinite(work.lb) & ~bad_down_j
    up = (work.obj <= 0.0) & np.isfinite(work.ub) & ~bad_up_j
    flag = (n_rows_j > 0) & ~fixed_mask & (down | up)
    if not np.any(flag):
        return 0
    changed = 0
    for j in range(int(np.flatnonzero(flag)[0]), n):
        if work.infeasible:
            break
        if j in work.fixed:
            continue
        positions = [
            p
            for p in work.col_entry[
                work.col_ptr[j] : work.col_ptr[j + 1]
            ].tolist()
            if work.data[p] != 0.0 and work.row_live[work.entry_row[p]]
        ]
        if not positions:
            continue
        cost = float(work.obj[j])
        down_safe = cost >= 0.0 and not math.isinf(work.lb[j])
        up_safe = cost <= 0.0 and not math.isinf(work.ub[j])
        for p in positions:
            sense = int(work.senses[work.entry_row[p]])
            coef = float(work.data[p])
            if sense == SENSE_EQ:
                down_safe = up_safe = False
                break
            if sense == SENSE_LE:
                down_safe = down_safe and coef >= 0.0
                up_safe = up_safe and coef <= 0.0
            else:
                down_safe = down_safe and coef <= 0.0
                up_safe = up_safe and coef >= 0.0
            if not down_safe and not up_safe:
                break
        if down_safe:
            work.fix_var(j, float(work.lb[j]), "dual fixing (down-safe)")
            work.note("dual-fixing")
            changed += 1
        elif up_safe:
            work.fix_var(j, float(work.ub[j]), "dual fixing (up-safe)")
            work.note("dual-fixing")
            changed += 1
    return changed


def _csr_conflict_adjacency(
    work: CsrWork, packing_mask: np.ndarray
) -> dict[int, set[int]]:
    """Conflict adjacency (var -> vars it conflicts with), derived
    from the same witness structure as the object twin
    ``_conflict_witnesses``: two binaries conflict iff they share a
    packing row or a negative-id clique from a balance equality.
    Collapsing the witness-row indirection into direct adjacency turns
    every downstream conflict test into one set membership/subset op
    without changing its truth value."""
    conflict: dict[int, set[int]] = {}
    packing_witness: dict[int, set[int]] = {}
    sel = packing_mask[work.entry_row] & (work.data != 0.0)
    row_members: dict[int, list[int]] = {}
    for r, j in zip(
        work.entry_row[sel].tolist(), work.indices[sel].tolist()
    ):
        row_members.setdefault(r, []).append(j)
        packing_witness.setdefault(j, set()).add(r)
    for members in row_members.values():
        mset = set(members)
        for j in members:
            conflict.setdefault(j, set()).update(mset)

    def covered_by_one_packing_row(members: list[int]) -> bool:
        # ``packing_witness`` holds exactly the nonnegative (packing
        # row) witness ids, so the scalar ``w >= 0`` filter of the
        # object twin becomes a dict lookup.
        if len(members) == 1:
            return True
        common: set[int] | None = None
        for j in members:
            rows_j = packing_witness.get(j)
            if not rows_j:
                return False
            common = rows_j if common is None else common & rows_j
            if not common:
                return False
        return bool(common)

    bin_j = work.integer & (work.lb == 0.0) & (work.ub == 1.0)
    is_one = (np.abs(work.data - 1.0) <= _TOL) & bin_j[work.indices]
    is_neg = (np.abs(work.data + 1.0) <= _TOL) & bin_j[work.indices]
    shaped = (
        (work.senses == SENSE_EQ)
        & (np.abs(work.rhs) <= _TOL)
        & (work.row_nnz > 0)
        & (_row_counts(is_one | is_neg, work.indptr) == work.row_nnz)
        & (_row_counts(is_one, work.indptr) > 0)
        & (_row_counts(is_neg, work.indptr) > 0)
    )
    indptr = work.indptr
    for r in np.flatnonzero(shaped).tolist():
        # Shaped rows partition their nonzero entries exactly into
        # ``is_one`` / ``is_neg`` (the count equality above), so the
        # per-entry masks reproduce the scalar coef classification.
        s, e = indptr[r], indptr[r + 1]
        cols = work.indices[s:e]
        pos = cols[is_one[s:e]].tolist()
        neg = cols[is_neg[s:e]].tolist()
        for clique, bound_side in ((pos, neg), (neg, pos)):
            if len(clique) < 2:
                continue
            if not covered_by_one_packing_row(bound_side):
                continue
            mset = set(clique)
            for j in clique:
                conflict.setdefault(j, set()).update(mset)
    return conflict


def csr_clique_merge(work: CsrWork) -> int:
    """Twin of ``pass_clique_merge``: vectorized packing/conflict
    detection, then the object pass's greedy maximal-extension loop
    verbatim (the greedy is inherently sequential)."""
    work._witness_handoff = None
    packing_mask = _unit_packing_mask(work)
    if not np.any(packing_mask):
        return 0
    conflict = _csr_conflict_adjacency(work, packing_mask)
    unit_support: dict[int, frozenset[int]] = {}
    var_rows: dict[int, set[int]] = {}
    sel = packing_mask[work.entry_row] & (work.data != 0.0)
    row_members: dict[int, list[int]] = {}
    for r, j in zip(
        work.entry_row[sel].tolist(), work.indices[sel].tolist()
    ):
        row_members.setdefault(r, []).append(j)
    for r, mem in row_members.items():
        members = frozenset(mem)
        unit_support[r] = members
        for j in members:
            var_rows.setdefault(j, set()).add(r)

    cg = conflict.get
    is_live = work.is_live
    changed = 0
    for r in sorted(unit_support):
        if not is_live(r) or r not in unit_support:
            continue
        support = set(unit_support[r])
        touching = set().union(*map(var_rows.__getitem__, support))
        candidates = set().union(*map(unit_support.__getitem__, touching))
        candidates -= support
        for x in sorted(candidates):
            if x not in var_rows:
                continue
            # ``x`` conflicts with every support member iff support is
            # a subset of x's conflict adjacency (one C-level subset
            # test instead of a per-member witness intersection).
            cx = cg(x)
            if cx and support <= cx:
                support.add(x)
                touching |= var_rows[x]
        covered = [
            rr
            for rr in sorted(touching)
            if is_live(rr) and unit_support[rr] <= support
        ]
        if len(covered) < 2:
            continue
        covered_nonzeros = sum(len(unit_support[rr]) for rr in covered)
        if len(support) >= covered_nonzeros:
            continue  # no nonzero win; keep the pairwise form
        for rr in covered:
            for j in unit_support[rr]:
                var_rows[j].discard(rr)
            work.remove_row(rr)
            unit_support.pop(rr)
        cols = list(support)
        new_index = work.add_extra_row(
            cols, [1.0] * len(cols), SENSE_LE, 1.0, f"clique_{min(support)}"
        )
        unit_support[new_index] = frozenset(support)
        # The merged row is itself a packing row, so its members now
        # pairwise conflict -- the adjacency twin of the object pass
        # adding the new row id to every member's witness set.
        for j in support:
            var_rows.setdefault(j, set()).add(new_index)
            conflict.setdefault(j, set()).update(support)
        work.note("clique-merge", len(covered))
        changed += len(covered)
    if changed == 0:
        # Nothing merged, so the working state -- and therefore the
        # conflict adjacency -- is exactly what the implication merge
        # that runs next would recompute; hand it over (the driver's
        # intervening compact() is a no-op on a clean state).
        work._witness_handoff = conflict
    return changed


def csr_implication_merge(work: CsrWork) -> int:
    """Twin of ``pass_implication_merge``: vectorized 3-nonzero shape
    prefilter; witnesses are only computed once a family of two or
    more candidate rows actually exists."""
    handoff = work._witness_handoff
    work._witness_handoff = None
    n_rows = len(work.senses)
    if not n_rows:
        return 0
    bin_j = work.integer & (work.lb == 0.0) & (work.ub == 1.0)
    flip_row = np.where(work.senses == SENSE_GE, -1.0, 1.0)
    v = flip_row[work.entry_row] * work.data
    pos_e = (np.abs(v - 1.0) <= _TOL) & bin_j[work.indices]
    neg_e = (np.abs(v + 1.0) <= _TOL) & bin_j[work.indices]
    cand = (
        (work.row_nnz == 3)
        & (work.senses != SENSE_EQ)
        & (np.abs(flip_row * work.rhs - 1.0) <= _TOL)
        & (_row_counts(pos_e, work.indptr) == 2)
        & (_row_counts(neg_e, work.indptr) == 1)
    )
    if not np.any(cand):
        return 0
    families: dict[tuple[int, int], list[tuple[int, int]]] = {}
    indptr = work.indptr
    for r in np.flatnonzero(cand).tolist():
        # Candidate rows have exactly 2 ``pos_e`` / 1 ``neg_e`` nonzero
        # entries (the count equalities above), so the per-entry masks
        # reproduce the scalar flip-normalized coef classification.
        s, e = indptr[r], indptr[r + 1]
        cols = work.indices[s:e]
        x, y = cols[pos_e[s:e]].tolist()
        (z,) = cols[neg_e[s:e]].tolist()
        families.setdefault((z, x), []).append((r, y))
        families.setdefault((z, y), []).append((r, x))
    if not any(len(members) >= 2 for members in families.values()):
        return 0
    # A quiescent clique merge left the state untouched, so its
    # conflict adjacency is exactly what recomputation would produce.
    conflict = (
        handoff
        if handoff is not None
        else _csr_conflict_adjacency(work, _unit_packing_mask(work))
    )
    cg = conflict.get

    def conflicting(u: int, w: int) -> bool:
        cu = cg(u)
        return cu is not None and w in cu

    changed = 0
    consumed: set[int] = set()
    for (z, x), members in sorted(
        families.items(), key=lambda item: (-len(item[1]), item[0])
    ):
        live = [(r, y) for r, y in members if r not in consumed]
        if len(live) < 2:
            continue
        ys = [y for _, y in live]
        if len(set(ys)) != len(ys):
            continue  # duplicate-row pass owns identical members
        if not all(
            conflicting(a, b) for i, a in enumerate(ys) for b in ys[i + 1 :]
        ):
            continue
        for r, _y in live:
            consumed.add(r)
            work.remove_row(r)
        work.add_extra_row(
            [x, z] + ys,
            [1.0, -1.0] + [1.0] * len(ys),
            SENSE_LE,
            1.0,
            f"impl_{z}_{x}",
        )
        work.note("implication-merge", len(live))
        changed += len(live)
    return changed


def csr_indicator_merge(work: CsrWork) -> int:
    """Twin of ``pass_indicator_merge`` (vectorized shape prefilter,
    scalar grouping in row order)."""
    n_rows = len(work.senses)
    if not n_rows:
        return 0
    bin_j = work.integer & (work.lb == 0.0) & (work.ub == 1.0)
    flip_row = np.where(work.senses == SENSE_GE, -1.0, 1.0)
    v = flip_row[work.entry_row] * work.data
    pos_e = (np.abs(v - 1.0) <= _TOL) & bin_j[work.indices]
    neg_e = (np.abs(v + 1.0) <= _TOL) & bin_j[work.indices]
    cand = (
        (work.senses != SENSE_EQ)
        & (work.row_nnz >= 2)
        & (_row_counts(pos_e | neg_e, work.indptr) == work.row_nnz)
        & (_row_counts(neg_e, work.indptr) == 1)
        & (_row_counts(pos_e, work.indptr) >= 1)
    )
    if not np.any(cand):
        return 0
    groups: dict[tuple, list[tuple[int, int]]] = {}
    for r in np.flatnonzero(cand).tolist():
        flip = float(flip_row[r])
        body: list[int] = []
        indicator = -1
        for j, coef in work.row_items(r):
            if abs(flip * coef - 1.0) <= _TOL:
                body.append(j)
            else:
                indicator = j
        key = (frozenset(body), round(flip * float(work.rhs[r]), _NORM_DIGITS))
        groups.setdefault(key, []).append((r, indicator))
    changed = 0
    for (body_set, rhs), members in groups.items():
        if len(members) < 2:
            continue
        if abs(rhs - round(rhs)) > _TOL:
            continue  # merge only sound for integral rhs (see oracle)
        indicators = [p for _, p in members]
        if len(set(indicators)) != len(indicators):
            continue  # duplicate-row pass owns identical members
        k = float(len(members))
        for r, _p in members:
            work.remove_row(r)
        work.add_extra_row(
            list(body_set) + indicators,
            [k] * len(body_set) + [-1.0] * len(indicators),
            SENSE_LE,
            k * rhs,
            f"ind_{min(body_set)}",
        )
        work.note("indicator-merge", len(members))
        changed += len(members)
    return changed


def make_csr_uturn_pass(pairs: "set[frozenset[int]]"):
    """CSR twin of ``make_uturn_row_pass`` (same re-verification of
    the surrounding rows before each removal)."""

    def safe(work: CsrWork, pair_row: int, j: int, other: int) -> bool:
        for p in work.col_entry[
            work.col_ptr[j] : work.col_ptr[j + 1]
        ].tolist():
            r = int(work.entry_row[p])
            if r == pair_row or not work.row_live[r]:
                continue
            coef = float(work.data[p])
            if coef == 0.0:
                continue
            sense = int(work.senses[r])
            if sense == SENSE_EQ:
                other_coef = 0.0
                for jj, cc in work.row_items(r):
                    if jj == other:
                        other_coef = cc
                        break
                if abs(coef + other_coef) > _TOL:
                    return False
            elif sense == SENSE_LE:
                if coef < -_TOL:
                    return False
            elif coef > _TOL:
                return False
        return True

    def csr_uturn_rows(work: CsrWork) -> int:
        if not pairs or not len(work.senses):
            return 0
        cand = (
            (work.senses == SENSE_LE)
            & (work.row_nnz == 2)
            & (np.abs(work.rhs - 1.0) <= _TOL)
        )
        if not np.any(cand):
            return 0
        changed = 0
        for r in np.flatnonzero(cand).tolist():
            if not work.row_live[r] or work.row_nnz[r] != 2:
                continue
            items = work.row_items(r)
            pair = frozenset(j for j, _ in items)
            if pair not in pairs:
                continue
            ja, jr = sorted(pair)
            if not all(abs(c - 1.0) <= _TOL for _, c in items):
                continue
            if work.obj[ja] <= _TOL or work.obj[jr] <= _TOL:
                continue
            if not (safe(work, r, ja, jr) and safe(work, r, jr, ja)):
                continue
            work.remove_row(r)
            work.note("uturn-row")
            changed += 1
        return changed

    return csr_uturn_rows


def csr_unconstrained_columns(work: CsrWork) -> int:
    """Vectorized twin of ``pass_unconstrained_columns``."""
    counts = (
        np.bincount(work.indices, minlength=work.n_vars)
        if len(work.indices)
        else np.zeros(work.n_vars, dtype=np.int64)
    )
    fixed_mask = np.zeros(work.n_vars, dtype=bool)
    if work.fixed:
        fixed_mask[
            np.fromiter(work.fixed.keys(), dtype=np.int64, count=len(work.fixed))
        ] = True
    cand = (counts == 0) & ~fixed_mask
    if not np.any(cand):
        return 0
    changed = 0
    for j in np.flatnonzero(cand).tolist():
        if work.infeasible:
            break
        if j in work.fixed:
            continue
        value = _unused_variable_value(
            float(work.lb[j]), float(work.ub[j]), float(work.obj[j])
        )
        if value is None:
            continue  # unbounded column; leave it for the solver
        work.fix_var(j, value, "appears in no constraint")
        work.note("unconstrained-column")
        changed += 1
    return changed


#: CSR pass sequence, same order as ``reductions.PASSES``.
CSR_PASSES = (
    csr_singleton_rows,
    csr_bound_propagation,
    csr_coefficient_tightening,
    csr_forced_subset,
    csr_dual_fixing,
    csr_duplicate_rows,
    csr_clique_merge,
    csr_implication_merge,
    csr_indicator_merge,
)


# -- extraction -------------------------------------------------------------


def extract_csr_model(work: CsrWork) -> tuple[CsrModel, dict[int, int]]:
    """Reduced columnar model plus old->new column map (twin of
    ``extract_model``; same variable order, same row order)."""
    work.compact()
    n = work.n_vars
    keep = np.ones(n, dtype=bool)
    if work.fixed:
        keep[
            np.fromiter(work.fixed.keys(), dtype=np.int64, count=len(work.fixed))
        ] = False
    old_idx = np.flatnonzero(keep)
    new_of_old = np.full(n, -1, dtype=np.int64)
    new_of_old[old_idx] = np.arange(len(old_idx), dtype=np.int64)
    col_map = dict(zip(old_idx.tolist(), range(len(old_idx))))
    reduced = CsrModel(
        name=f"{work.name}__presolved",
        var_names=[work.var_names[j] for j in old_idx.tolist()],
        lb=work.lb[old_idx].copy(),
        ub=work.ub[old_idx].copy(),
        integer=work.integer[old_idx].copy(),
        obj=work.obj[old_idx].copy(),
        obj_const=float(work.obj_const),
        indptr=work.indptr.copy(),
        indices=new_of_old[work.indices],
        data=work.data.copy(),
        senses=work.senses.copy(),
        row_const=-work.rhs,
        row_names=list(work.row_names),
    )
    return reduced, col_map


def live_counts_csr(work: CsrWork) -> tuple[int, int, int]:
    """(rows, cols, nonzeros) still present (twin of ``live_counts``)."""
    live_entry = (work.data != 0.0) & work.row_live[work.entry_row]
    rows = int(np.count_nonzero(work.row_live)) + sum(
        1 for ex in work.extras if ex.live
    )
    cols = work.n_vars - len(work.fixed)
    nonzeros = int(np.count_nonzero(live_entry)) + sum(
        len(ex.cols) for ex in work.extras if ex.live
    )
    return rows, cols, nonzeros


# -- object-pass bridge -----------------------------------------------------


def to_object_work(work: CsrWork) -> Work:
    """Materialize the equivalent object ``Work`` (compacted state) so
    arbitrary extra object passes can run against CSR-presolved state."""
    work.compact()
    rows: list[_Row | None] = []
    col_rows: dict[int, set[int]] = {}
    indptr = work.indptr.tolist()
    cols = work.indices.tolist()
    vals = work.data.tolist()
    senses = work.senses.tolist()
    rhs = work.rhs.tolist()
    for r in range(len(senses)):
        s, e = indptr[r], indptr[r + 1]
        coefs = dict(zip(cols[s:e], vals[s:e]))
        rows.append(
            _Row(coefs, _CODE_TO_SENSE[senses[r]], rhs[r], work.row_names[r])
        )
        for j in coefs:
            col_rows.setdefault(j, set()).add(r)
    obj_nz = np.flatnonzero(work.obj)
    return Work(
        name=work.name,
        lb=work.lb.tolist(),
        ub=work.ub.tolist(),
        integer=work.integer.tolist(),
        var_names=list(work.var_names),
        obj=dict(zip(obj_nz.tolist(), work.obj[obj_nz].tolist())),
        obj_const=float(work.obj_const),
        rows=rows,
        col_rows=col_rows,
        fixed=dict(work.fixed),
        infeasible_reason=work.infeasible_reason,
        counts=dict(work.counts),
    )


def load_object_work(work: CsrWork, obj_work: Work) -> None:
    """Fold a (possibly mutated) object ``Work`` back into ``work``,
    preserving the object row order (live rows in list order)."""
    n = len(obj_work.var_names)
    work.var_names = list(obj_work.var_names)
    work.lb = np.asarray(obj_work.lb, dtype=np.float64)
    work.ub = np.asarray(obj_work.ub, dtype=np.float64)
    work.integer = np.asarray(obj_work.integer, dtype=bool)
    work.obj = np.zeros(n, dtype=np.float64)
    for j, coef in obj_work.obj.items():
        work.obj[j] = coef
    work.obj_const = float(obj_work.obj_const)
    work.fixed = dict(obj_work.fixed)
    work.counts = dict(obj_work.counts)
    work.infeasible_reason = obj_work.infeasible_reason
    cols: list[int] = []
    vals: list[float] = []
    indptr = [0]
    senses: list[int] = []
    rhs: list[float] = []
    names: list[str] = []
    ids: list[int] = []
    n_bridged = len(work.row_ids)
    for i, row in enumerate(obj_work.rows):
        if row is None:
            continue
        cols.extend(row.coefs.keys())
        vals.extend(row.coefs.values())
        indptr.append(len(cols))
        senses.append(_SENSE_TO_CODE[row.sense])
        rhs.append(row.rhs)
        names.append(row.name)
        # Rows handed to the bridge keep their stable id; rows the
        # object pass appended get fresh ones, in append order.
        if i < n_bridged:
            ids.append(int(work.row_ids[i]))
        else:
            ids.append(work._next_row_id)
            work._next_row_id += 1
    work.indices = np.asarray(cols, dtype=np.int64)
    work.data = np.asarray(vals, dtype=np.float64)
    work.indptr = np.asarray(indptr, dtype=np.int64)
    work.senses = np.asarray(senses, dtype=np.int8)
    work.rhs = np.asarray(rhs, dtype=np.float64)
    work.row_names = names
    work.row_ids = np.asarray(ids, dtype=np.int64)
    work.row_live = np.ones(len(senses), dtype=bool)
    work.extras = []
    work._dirty = False
    # The object pass mutated state the counter could not observe.
    work.generation += 1
    work._reindex()
