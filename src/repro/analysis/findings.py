"""Structured records emitted by the pre-solve static-analysis passes.

Both passes (the model linter and the clip infeasibility certifier)
report through these types so CLI / eval consumers can render text or
JSON uniformly:

- :class:`LintFinding`: one issue in a built model.  ``ERROR``
  findings are guarantees (the model cannot be feasible, or is
  malformed); ``WARN`` findings are model bloat that a solver
  tolerates but pre-solve should not produce.
- :class:`LintReport`: all findings for one model plus size stats.
- :class:`InfeasibilityCertificate`: a witness that a (clip, rule)
  pair has no rule-correct routing, produced without building or
  solving the ILP.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How strong a lint finding is."""

    ERROR = "error"  # guaranteed infeasible / malformed model
    WARN = "warn"    # model bloat; solvable but wasteful

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class LintFinding:
    """One issue detected in a built model.

    ``code`` is a stable kebab-case identifier (e.g.
    ``constant-infeasible-row``); ``context`` carries
    finding-specific details (row index, variable name, ...).
    """

    code: str
    severity: Severity
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "context": dict(self.context),
        }

    def sort_key(self) -> tuple[str, str, str, str]:
        """Total order for deterministic report serialization."""
        return (
            self.severity.value,
            self.code,
            self.message,
            json.dumps(self.context, sort_keys=True, default=str),
        )

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


@dataclass
class LintReport:
    """All findings for one model, plus model-size statistics."""

    model_name: str
    findings: list[LintFinding] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.WARN]

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def count(self, code: str) -> int:
        """Number of findings with the given code."""
        return sum(1 for f in self.findings if f.code == code)

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model_name,
            "findings": [
                f.to_dict()
                for f in sorted(self.findings, key=LintFinding.sort_key)
            ],
            "stats": dict(self.stats),
        }

    def summary(self) -> str:
        return (
            f"{self.model_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )


@dataclass(frozen=True)
class InfeasibilityCertificate:
    """Why a (clip, rule) pair has no rule-correct routing.

    ``kind`` is one of:

    - ``unreachable-pin``: a sink pin cannot be reached from its net's
      source through the rule-pruned routing graph;
    - ``saturated-cut``: more nets must cross an axis-aligned cut than
      the cut has usable crossing arcs (via-adjacency blocking counted
      through a tiling bound).

    The certifier is *sound*: it only emits a certificate when the ILP
    is guaranteed infeasible (see ``docs/static_analysis.md``), so a
    certificate may short-circuit the solve.
    """

    kind: str
    clip_name: str
    rule_name: str
    message: str
    net_name: str | None = None
    witness: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "clip": self.clip_name,
            "rule": self.rule_name,
            "net": self.net_name,
            "message": self.message,
            "witness": dict(self.witness),
        }

    def __str__(self) -> str:
        net = f" net {self.net_name}" if self.net_name else ""
        return (
            f"{self.clip_name}/{self.rule_name}{net}: "
            f"{self.kind} -- {self.message}"
        )
