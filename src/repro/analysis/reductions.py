"""Sound model-reduction passes over a built MILP.

Each pass rewrites a mutable working form of the model
(:class:`Work`) and returns how many changes it made; the fixpoint
driver in :mod:`repro.analysis.presolve` iterates the passes until
none fires.  Every rewrite preserves the model's feasibility status
and its optimal objective value (though not necessarily the full
feasible set -- e.g. flow circulations disconnected from any
commodity path are removed), and every variable/row the passes touch
is recorded so solutions of the reduced model lift back to the
original variable space.

Pass catalog (see ``docs/static_analysis.md``):

- ``fix``: fix a variable to a value (seeded by per-net reachability
  on routing ILPs, and fired by singleton rows / degenerate bounds);
- ``singleton-row``: a row with one variable becomes a bound update
  (equality rows substitute the variable outright);
- ``bound-propagation``: per-row activity bounds remove redundant
  rows, prove infeasibility, and tighten variable bounds (with
  integer rounding);
- ``coefficient-tightening``: classic presolve tightening of binary
  coefficients in inequality rows (integer-equivalent, tighter LP
  relaxation);
- ``forced-subset``: a row forcing one unit into binaries that sit
  inside a unit packing row fixes the packing row's other members;
- ``dual-fixing``: variables whose movement toward a bound can never
  hurt any row or the objective are pinned there;
- ``duplicate-row``: support-bucketed, scale-normalized elimination
  of duplicate/dominated rows, keeping the tightest;
- ``clique-merge``: pairwise mutual-exclusion rows (witnessed by unit
  packing rows and by cliques derived from balance equalities) merge
  into maximal clique rows;
- ``implication-merge``: SADP indicator families ``x + y_i - z <= 1``
  with pairwise-conflicting ``y_i`` collapse into one row;
- ``indicator-merge``: rows differing only in a single negated binary
  merge into one scaled row;
- ``uturn-row``: routing-seeded removal of exhausted two-variable
  arc-exclusivity rows (see :func:`make_uturn_row_pass`).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.ilp.model import Constraint, LinExpr, Model, Var

_TOL = 1e-9
#: Digits kept when normalizing coefficient vectors for row comparison.
_NORM_DIGITS = 12


@dataclass
class _Row:
    """One constraint in working form: ``coefs . x (sense) rhs``."""

    coefs: dict[int, float]
    sense: str  # "<=", ">=", "=="
    rhs: float
    name: str = ""


@dataclass
class Work:
    """Mutable working representation of a model under reduction."""

    name: str
    lb: list[float]
    ub: list[float]
    integer: list[bool]
    var_names: list[str]
    obj: dict[int, float]
    obj_const: float
    rows: list[_Row | None]
    col_rows: dict[int, set[int]]
    fixed: dict[int, float] = field(default_factory=dict)
    infeasible_reason: str | None = None
    counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_model(cls, model: Model) -> "Work":
        rows: list[_Row | None] = []
        col_rows: dict[int, set[int]] = {}
        for r, con in enumerate(model.constraints):
            rows.append(
                _Row(dict(con.expr.coefs), con.sense, -con.expr.const, con.name)
            )
            for j in con.expr.coefs:
                col_rows.setdefault(j, set()).add(r)
        return cls(
            name=model.name,
            lb=[v.lb for v in model.variables],
            ub=[v.ub for v in model.variables],
            integer=[v.is_integer for v in model.variables],
            var_names=[v.name for v in model.variables],
            obj=dict(model.objective.coefs),
            obj_const=model.objective.const,
            rows=rows,
            col_rows=col_rows,
        )

    # -- bookkeeping --------------------------------------------------------

    @property
    def infeasible(self) -> bool:
        return self.infeasible_reason is not None

    def note(self, pass_name: str, n: int = 1) -> None:
        self.counts[pass_name] = self.counts.get(pass_name, 0) + n

    def mark_infeasible(self, reason: str) -> None:
        if self.infeasible_reason is None:
            self.infeasible_reason = reason

    def remove_row(self, r: int) -> None:
        row = self.rows[r]
        if row is None:
            return
        for j in row.coefs:
            live = self.col_rows.get(j)
            if live is not None:
                live.discard(r)
        self.rows[r] = None

    def fix_var(self, j: int, value: float, reason: str) -> bool:
        """Fix variable ``j`` and substitute it out of every row.

        Returns False (and marks the model infeasible) when the value
        contradicts the variable's bounds or integrality.
        """
        if j in self.fixed:
            if abs(self.fixed[j] - value) > 1e-6:
                self.mark_infeasible(
                    f"variable {self.var_names[j]} fixed to conflicting "
                    f"values {self.fixed[j]:g} and {value:g} ({reason})"
                )
                return False
            return True
        if self.integer[j]:
            snapped = round(value)
            if abs(snapped - value) > 1e-6:
                self.mark_infeasible(
                    f"integer variable {self.var_names[j]} forced to "
                    f"fractional value {value:g} ({reason})"
                )
                return False
            value = float(snapped)
        if value < self.lb[j] - 1e-6 or value > self.ub[j] + 1e-6:
            self.mark_infeasible(
                f"variable {self.var_names[j]} forced to {value:g} outside "
                f"bounds [{self.lb[j]:g}, {self.ub[j]:g}] ({reason})"
            )
            return False
        self.fixed[j] = value
        self.lb[j] = self.ub[j] = value
        self.obj_const += self.obj.pop(j, 0.0) * value
        for r in list(self.col_rows.get(j, ())):
            row = self.rows[r]
            if row is None:
                continue
            coef = row.coefs.pop(j, 0.0)
            row.rhs -= coef * value
            if not row.coefs:
                self._finish_empty_row(r, row)
        self.col_rows.pop(j, None)
        self.note("fix")
        return True

    def _finish_empty_row(self, r: int, row: _Row) -> None:
        violated = (
            (row.sense == "<=" and row.rhs < -_TOL)
            or (row.sense == ">=" and row.rhs > _TOL)
            or (row.sense == "==" and abs(row.rhs) > _TOL)
        )
        if violated:
            self.mark_infeasible(
                f"row {row.name or r} reduced to 0 {row.sense} {row.rhs:g}"
            )
        self.remove_row(r)

    def tighten_lb(self, j: int, lb: float) -> bool:
        if self.integer[j]:
            # float(), not the bare int ceil: bounds must stay floats
            # so the reduced model's canonical bytes (repr-exact) match
            # the columnar pipeline, which stores float64 throughout.
            lb = float(math.ceil(lb - 1e-6))
        if lb <= self.lb[j] + _TOL:
            return False
        if lb > self.ub[j] + 1e-6:
            self.mark_infeasible(
                f"variable {self.var_names[j]}: implied lb {lb:g} exceeds "
                f"ub {self.ub[j]:g}"
            )
            return True
        self.lb[j] = lb
        self.note("bound-propagation")
        if abs(self.ub[j] - self.lb[j]) <= _TOL:
            self.fix_var(j, self.lb[j], "bounds closed")
        return True

    def tighten_ub(self, j: int, ub: float) -> bool:
        if self.integer[j]:
            ub = float(math.floor(ub + 1e-6))
        if ub >= self.ub[j] - _TOL:
            return False
        if ub < self.lb[j] - 1e-6:
            self.mark_infeasible(
                f"variable {self.var_names[j]}: implied ub {ub:g} below "
                f"lb {self.lb[j]:g}"
            )
            return True
        self.ub[j] = ub
        self.note("bound-propagation")
        if abs(self.ub[j] - self.lb[j]) <= _TOL:
            self.fix_var(j, self.lb[j], "bounds closed")
        return True

    def activity_range(self, row: _Row) -> tuple[float, float]:
        lo = hi = 0.0
        for j, coef in row.coefs.items():
            a, b = coef * self.lb[j], coef * self.ub[j]
            lo += min(a, b)
            hi += max(a, b)
        return lo, hi


# -- passes -----------------------------------------------------------------


def pass_singleton_rows(work: Work) -> int:
    """Rows with one variable: substitute (==) or fold into bounds."""
    changed = 0
    for r, row in enumerate(work.rows):
        if work.infeasible:
            break
        if row is None or len(row.coefs) != 1:
            continue
        ((j, coef),) = row.coefs.items()
        if abs(coef) < _TOL:
            work._finish_empty_row(r, row)
            continue
        bound = row.rhs / coef
        if row.sense == "==":
            work.remove_row(r)
            work.fix_var(j, bound, f"singleton equality row {row.name or r}")
            changed += 1
            work.note("singleton-row")
            continue
        upper = (row.sense == "<=") == (coef > 0)
        work.remove_row(r)
        if upper:
            work.tighten_ub(j, bound)
        else:
            work.tighten_lb(j, bound)
        work.note("singleton-row")
        changed += 1
    return changed


def pass_bound_propagation(work: Work) -> int:
    """Remove redundant rows, prove infeasibility, tighten bounds."""
    changed = 0
    for r, row in enumerate(work.rows):
        if work.infeasible:
            break
        if row is None or len(row.coefs) < 2:
            continue
        lo, hi = work.activity_range(row)
        rhs = row.rhs
        if row.sense == "<=":
            if lo > rhs + _TOL:
                work.mark_infeasible(
                    f"row {row.name or r}: min activity {lo:g} > rhs {rhs:g}"
                )
                return changed + 1
            if hi <= rhs + _TOL:
                work.remove_row(r)
                work.note("redundant-row")
                changed += 1
                continue
        elif row.sense == ">=":
            if hi < rhs - _TOL:
                work.mark_infeasible(
                    f"row {row.name or r}: max activity {hi:g} < rhs {rhs:g}"
                )
                return changed + 1
            if lo >= rhs - _TOL:
                work.remove_row(r)
                work.note("redundant-row")
                changed += 1
                continue
        else:  # ==
            if lo > rhs + _TOL or hi < rhs - _TOL:
                work.mark_infeasible(
                    f"row {row.name or r}: activity [{lo:g}, {hi:g}] "
                    f"excludes rhs {rhs:g}"
                )
                return changed + 1
            if hi - lo <= _TOL:
                work.remove_row(r)
                work.note("redundant-row")
                changed += 1
                continue
        changed += _propagate_row_bounds(work, row, lo, hi)
    return changed


def _propagate_row_bounds(work: Work, row: _Row, lo: float, hi: float) -> int:
    """Implied per-variable bounds from one row's activity range."""
    changed = 0
    # For <=: coef*x_j <= rhs - (lo - min-term_j); for >= / == analogous.
    le_like = row.sense in ("<=", "==")
    ge_like = row.sense in (">=", "==")
    n_fixed_before = len(work.fixed)
    for j, coef in list(row.coefs.items()):
        if abs(coef) < _TOL:
            continue
        if len(work.fixed) != n_fixed_before:
            # A tighten closed some variable's bounds and fix_var
            # rewrote this row (and lo/hi) under us; stop and let the
            # next fixpoint iteration re-derive bounds from fresh
            # activity ranges rather than mixing stale and new state.
            break
        if j in row.coefs and row.coefs[j] != coef:
            break  # coefficient rewritten mid-iteration; same story
        term_lo = min(coef * work.lb[j], coef * work.ub[j])
        term_hi = max(coef * work.lb[j], coef * work.ub[j])
        if le_like and not math.isinf(lo):
            # coef * x_j <= rhs - (lo - term_lo)
            limit = row.rhs - (lo - term_lo)
            if coef > 0:
                if work.tighten_ub(j, limit / coef):
                    changed += 1
            else:
                if work.tighten_lb(j, limit / coef):
                    changed += 1
        if work.infeasible:
            return changed
        if ge_like and not math.isinf(hi):
            # coef * x_j >= rhs - (hi - term_hi)
            limit = row.rhs - (hi - term_hi)
            if coef > 0:
                if work.tighten_lb(j, limit / coef):
                    changed += 1
            else:
                if work.tighten_ub(j, limit / coef):
                    changed += 1
        if work.infeasible:
            return changed
    return changed


def pass_coefficient_tightening(work: Work) -> int:
    """Tighten binary coefficients in inequality rows.

    For ``S + a_j x_j <= b`` with binary ``x_j``, ``a_j > 0`` and the
    other terms' max activity ``U <= b``: the ``x_j = 0`` branch is
    unconstrained, so ``a_j' = a_j - (b - U)`` and ``b' = U`` is
    integer-equivalent with a tighter LP relaxation (symmetrically for
    ``a_j < 0`` and for ``>=`` rows).
    """
    changed = 0
    for r, row in enumerate(work.rows):
        if work.infeasible:
            break
        if row is None or row.sense == "==" or len(row.coefs) < 2:
            continue
        sign = 1.0 if row.sense == "<=" else -1.0
        # Work in <= space: sum (sign*coef) x <= sign*rhs.
        rhs = sign * row.rhs
        hi_total = 0.0
        finite = True
        for j, coef in row.coefs.items():
            c = sign * coef
            term_hi = max(c * work.lb[j], c * work.ub[j])
            if math.isinf(term_hi):
                finite = False
                break
            hi_total += term_hi
        if not finite or hi_total <= rhs + _TOL:
            continue  # redundant rows are bound-propagation's job
        for j in list(row.coefs):
            if not work.integer[j] or work.lb[j] != 0.0 or work.ub[j] != 1.0:
                continue
            c = sign * row.coefs[j]
            term_hi = max(c, 0.0)
            others_hi = hi_total - term_hi
            if c > _TOL and others_hi <= rhs - _TOL:
                slack = rhs - others_hi  # > 0
                if c > slack + _TOL:
                    new_c = c - (rhs - others_hi)
                    row.coefs[j] = sign * new_c
                    rhs = others_hi
                    row.rhs = sign * rhs
                    hi_total = others_hi + max(new_c, 0.0)
                    work.note("coefficient-tightening")
                    changed += 1
    return changed


def _row_signature(row: _Row) -> tuple[tuple[int, ...], tuple[float, ...], str, float]:
    """Scale-normalized (support, coefs, sense, rhs) for row bucketing.

    Rows proportional by a positive factor normalize identically; a
    negative factor flips the sense, so ``-x - y >= -1`` matches
    ``x + y <= 1``.
    """
    items = sorted(row.coefs.items())
    support = tuple(j for j, _ in items)
    pivot = items[0][1]
    scale = 1.0 / pivot
    coefs = tuple(round(c * scale, _NORM_DIGITS) for _, c in items)
    sense = row.sense
    if pivot < 0 and sense != "==":
        sense = "<=" if sense == ">=" else ">="
    return support, coefs, sense, round(row.rhs * scale, _NORM_DIGITS)


def pass_duplicate_rows(work: Work) -> int:
    """Drop duplicate/dominated rows, bucketed by support signature."""
    changed = 0
    groups: dict[tuple, list[tuple[int, float]]] = {}
    for r, row in enumerate(work.rows):
        if row is None or not row.coefs:
            continue
        support, coefs, sense, rhs = _row_signature(row)
        groups.setdefault((support, coefs, sense), []).append((r, rhs))
    for (_, _, sense), members in groups.items():
        if len(members) < 2:
            continue
        if sense == "<=":
            keep = min(members, key=lambda item: (item[1], item[0]))
        elif sense == ">=":
            keep = max(members, key=lambda item: (item[1], -item[0]))
        else:
            keep = members[0]
        for r, rhs in members:
            if r == keep[0]:
                continue
            if sense == "==" and abs(rhs - keep[1]) > _TOL:
                work.mark_infeasible(
                    f"equality rows {keep[0]} and {r} share coefficients "
                    f"but need rhs {keep[1]:g} and {rhs:g}"
                )
                return changed + 1
            work.remove_row(r)
            work.note("duplicate-row")
            changed += 1
    return changed


def pass_forced_subset(work: Work) -> int:
    """Fix packing-row members excluded by a forced variable subset.

    A row that implies ``sum_{j in P} x_j >= r`` over binaries with
    ``r >= 1`` (an equality or inequality whose remaining terms have
    bounded activity) forces at least one unit into P.  If P lies
    inside a unit packing row ``sum_{j in W} x_j <= 1``, the members
    of ``W \\ P`` can never be 1 and are fixed to 0; if ``r > 1`` the
    two rows are outright contradictory.  On routing models this
    fires at pin vertices with a single access point: once the
    singleton pass fixes the pin's virtual arc, the access vertex's
    flow-conservation row forces one unit into the net's entering
    arcs, which sit inside the vertex-capacity row -- so every other
    net's arc entering that vertex is fixed to 0, and the fixes
    cascade through exclusivity, adjacency, and SADP rows.
    """
    changed = 0
    packing: dict[int, set[int]] = {}
    for r, row in enumerate(work.rows):
        if row is not None and _is_unit_packing_row(work, row):
            for j in row.coefs:
                packing.setdefault(j, set()).add(r)
    if not packing:
        return 0
    for r in range(len(work.rows)):
        if work.infeasible:
            break
        base = work.rows[r]
        if base is None or not base.coefs:
            continue
        directions = []
        if base.sense in ("==", ">="):
            directions.append(1.0)
        if base.sense in ("==", "<="):
            directions.append(-1.0)
        for sign in directions:
            row = work.rows[r]
            if row is None:
                break
            forced: list[int] = []
            others_max = 0.0
            bounded = True
            for j, coef in row.coefs.items():
                a = sign * coef
                if (
                    abs(a - 1.0) <= _TOL
                    and work.integer[j]
                    and work.lb[j] == 0.0
                    and work.ub[j] == 1.0
                ):
                    forced.append(j)
                else:
                    hi = work.ub[j] if a > 0 else work.lb[j]
                    if math.isinf(hi):
                        bounded = False
                        break
                    others_max += a * hi
            if not bounded or not forced:
                continue
            r_low = sign * row.rhs - others_max
            if r_low < 1.0 - _TOL:
                continue
            common: set[int] | None = None
            for j in forced:
                rows_j = packing.get(j)
                if not rows_j:
                    common = None
                    break
                common = set(rows_j) if common is None else common & rows_j
                if not common:
                    break
            if not common:
                continue
            if r_low > 1.0 + _TOL:
                work.mark_infeasible(
                    f"row {row.name or r} forces {r_low:g} units into "
                    f"variables a packing row caps at one"
                )
                return changed + 1
            forced_set = set(forced)
            for w in sorted(common):
                wrow = work.rows[w]
                if wrow is None or not _is_unit_packing_row(work, wrow):
                    continue
                for j in [k for k in wrow.coefs if k not in forced_set]:
                    if j in work.fixed or work.infeasible:
                        continue
                    work.fix_var(j, 0.0, "forced-subset exclusion")
                    work.note("forced-subset")
                    changed += 1
    return changed


def pass_dual_fixing(work: Work) -> int:
    """Fix variables whose movement toward one bound can never hurt.

    Minimizing: if ``c_j >= 0`` and every row relaxes as ``x_j``
    decreases (``<=`` rows with nonnegative coefficient, ``>=`` rows
    with nonpositive coefficient, no equality rows), any feasible
    point stays feasible and no worse with ``x_j = lb`` -- so fix it
    there (symmetrically to ``ub`` for ``c_j <= 0``).  Preserves
    feasibility status and optimal objective, not the full solution
    set.
    """
    changed = 0
    for j in range(len(work.var_names)):
        if work.infeasible:
            break
        if j in work.fixed:
            continue
        rows = [work.rows[r] for r in work.col_rows.get(j, ())]
        if not rows:
            continue  # pass_unconstrained_columns owns no-row columns
        cost = work.obj.get(j, 0.0)
        down_safe = cost >= 0.0 and not math.isinf(work.lb[j])
        up_safe = cost <= 0.0 and not math.isinf(work.ub[j])
        for row in rows:
            if row is None:
                continue
            coef = row.coefs.get(j, 0.0)
            if row.sense == "==":
                down_safe = up_safe = False
                break
            if row.sense == "<=":
                down_safe = down_safe and coef >= 0.0
                up_safe = up_safe and coef <= 0.0
            else:
                down_safe = down_safe and coef <= 0.0
                up_safe = up_safe and coef >= 0.0
            if not down_safe and not up_safe:
                break
        if down_safe:
            work.fix_var(j, work.lb[j], "dual fixing (down-safe)")
            work.note("dual-fixing")
            changed += 1
        elif up_safe:
            work.fix_var(j, work.ub[j], "dual fixing (up-safe)")
            work.note("dual-fixing")
            changed += 1
    return changed


def pass_clique_merge(work: Work) -> int:
    """Merge pairwise mutual-exclusion rows into clique rows.

    A ``<= 1`` row with unit coefficients over nonnegative binaries
    says "at most one of these is 1", so any two of its variables
    conflict.  A set of variables that conflict *pairwise* admits the
    clique row ``sum x <= 1`` -- exact on integer points (at most one
    member can be 1) and strictly tighter than the pairwise rows on
    the LP relaxation.  The pass greedily extends each such row to a
    maximal clique and, when the clique row covers several existing
    rows with fewer nonzeros than their sum, replaces them.

    Conflict witnesses stay live across merges: a removed row's
    variable pairs are all contained in the merged row's support, so
    every recorded conflict is always backed by a remaining row and
    the rewrite never invents an edge.  This collapses the paper's
    via-adjacency neighborhoods (constraint (5) surroundings) and
    SADP forbidden-pattern pairs (11)-(12) dramatically under the
    FULL via restriction, where 2x2 site tiles are 4-cliques.
    """
    witness = _conflict_witnesses(work)
    unit_support: dict[int, frozenset[int]] = {}
    var_rows: dict[int, set[int]] = {}
    for r, row in enumerate(work.rows):
        if row is None or not _is_unit_packing_row(work, row):
            continue
        unit_support[r] = frozenset(row.coefs)
        for j in row.coefs:
            var_rows.setdefault(j, set()).add(r)

    def conflicting(u: int, v: int) -> bool:
        rows_u = witness.get(u)
        return bool(rows_u) and not rows_u.isdisjoint(witness.get(v, ()))

    changed = 0
    for r in sorted(unit_support):
        if work.rows[r] is None or r not in unit_support:
            continue
        support = set(unit_support[r])
        touching: set[int] = set()
        for j in support:
            touching |= var_rows[j]
        candidates: set[int] = set()
        for rr in touching:
            candidates |= unit_support[rr]
        candidates -= support
        for x in sorted(candidates):
            if x not in var_rows:
                continue
            if all(conflicting(x, s) for s in support):
                support.add(x)
                touching |= var_rows[x]
        covered = [
            rr
            for rr in sorted(touching)
            if work.rows[rr] is not None and unit_support[rr] <= support
        ]
        if len(covered) < 2:
            continue
        covered_nonzeros = sum(len(unit_support[rr]) for rr in covered)
        if len(support) >= covered_nonzeros:
            continue  # no nonzero win; keep the pairwise form
        for rr in covered:
            for j in unit_support[rr]:
                var_rows[j].discard(rr)
            work.remove_row(rr)
            unit_support.pop(rr)
        merged = _Row(
            {j: 1.0 for j in support}, "<=", 1.0, name=f"clique_{min(support)}"
        )
        new_index = len(work.rows)
        work.rows.append(merged)
        unit_support[new_index] = frozenset(support)
        for j in support:
            work.col_rows.setdefault(j, set()).add(new_index)
            var_rows.setdefault(j, set()).add(new_index)
            witness.setdefault(j, set()).add(new_index)
        work.note("clique-merge", len(covered))
        changed += len(covered)
    return changed


def _is_unit_packing_row(work: Work, row: _Row) -> bool:
    """``<= 1`` with unit coefficients over nonnegative binaries."""
    if row.sense != "<=" or abs(row.rhs - 1.0) > _TOL or len(row.coefs) < 2:
        return False
    return all(abs(c - 1.0) <= _TOL for c in row.coefs.values()) and all(
        work.integer[j] and work.lb[j] == 0.0 and work.ub[j] == 1.0
        for j in row.coefs
    )


def _conflict_witnesses(work: Work) -> dict[int, set[int]]:
    """Variable -> witness ids proving pairwise mutual exclusion.

    Two binaries sharing a witness can never both be 1.  Witnesses are
    (a) live unit packing rows -- all members of an all-unit ``<= 1``
    row over nonnegative binaries are pairwise exclusive -- and (b)
    cliques *derived* from balance equalities: in ``sum P - sum N ==
    0`` over unit-coefficient binaries, if ``sum N <= 1`` is known
    (``|N| == 1``, or all of N inside one packing row), then ``sum P
    <= 1`` follows, so P is a clique (and symmetrically N).  On
    routing models this derives "at most one arc of a net leaves a
    vertex" from flow conservation plus the vertex-capacity row, which
    no packing row states directly.
    """
    witness: dict[int, set[int]] = {}
    for r, row in enumerate(work.rows):
        if row is None or not _is_unit_packing_row(work, row):
            continue
        for j in row.coefs:
            witness.setdefault(j, set()).add(r)

    def covered_by_one_packing_row(members: list[int]) -> bool:
        if len(members) == 1:
            return True
        common: set[int] | None = None
        for j in members:
            rows_j = {w for w in witness.get(j, ()) if w >= 0}
            common = rows_j if common is None else common & rows_j
            if not common:
                return False
        return bool(common)

    # Derived cliques get negative ids so they can never collide with
    # row indices (merge passes append rows while witnesses are live).
    next_id = -1
    for row in list(work.rows):
        if row is None or row.sense != "==" or abs(row.rhs) > _TOL:
            continue
        pos: list[int] = []
        neg: list[int] = []
        shaped = True
        for j, coef in row.coefs.items():
            if not (
                work.integer[j] and work.lb[j] == 0.0 and work.ub[j] == 1.0
            ):
                shaped = False
                break
            if abs(coef - 1.0) <= _TOL:
                pos.append(j)
            elif abs(coef + 1.0) <= _TOL:
                neg.append(j)
            else:
                shaped = False
                break
        if not shaped or not pos or not neg:
            continue
        for clique, bound_side in ((pos, neg), (neg, pos)):
            if len(clique) < 2:
                continue
            if not covered_by_one_packing_row(bound_side):
                continue
            for j in clique:
                witness.setdefault(j, set()).add(next_id)
            next_id -= 1
    return witness


def pass_implication_merge(work: Work) -> int:
    """Merge implication rows ``x + y_i - z <= 1`` sharing ``(z, x)``.

    The paper's SADP EOL linearization (constraints (6)-(8)) emits one
    row per (wire arc, crossing arc) pair: ``e_wire + e_cross - p <=
    1`` ("both used forces the indicator up").  When the crossing
    arcs ``y_i`` of one family are pairwise conflicting -- witnessed
    by unit packing rows such as via-adjacency or vertex-capacity
    cliques, which guarantee at most one ``y_i`` is 1 -- the family
    collapses to the single row ``x + sum y_i - z <= 1``:

    - merged implies each member (the dropped ``y`` terms are
      nonnegative);
    - members + conflicts imply merged (if ``y_k = 1`` the member row
      for ``y_k`` bounds the LHS; if all ``y`` are 0 it is trivial);

    so the integer feasible set is exactly preserved while ``3L``
    nonzeros become ``L + 2``.
    """
    witness = _conflict_witnesses(work)

    def conflicting(u: int, v: int) -> bool:
        rows_u = witness.get(u)
        return bool(rows_u) and not rows_u.isdisjoint(witness.get(v, ()))

    # Canonicalize candidates to "<=" form: two +1 vars, one -1 var,
    # rhs 1, all binary.
    families: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for r, row in enumerate(work.rows):
        if row is None or len(row.coefs) != 3 or row.sense == "==":
            continue
        flip = -1.0 if row.sense == ">=" else 1.0
        if abs(flip * row.rhs - 1.0) > _TOL:
            continue
        pos, neg = [], []
        for j, coef in row.coefs.items():
            value = flip * coef
            if abs(value - 1.0) <= _TOL:
                pos.append(j)
            elif abs(value + 1.0) <= _TOL:
                neg.append(j)
        if len(pos) != 2 or len(neg) != 1:
            continue
        if not all(
            work.integer[j] and work.lb[j] == 0.0 and work.ub[j] == 1.0
            for j in row.coefs
        ):
            continue
        x, y = pos
        (z,) = neg
        families.setdefault((z, x), []).append((r, y))
        families.setdefault((z, y), []).append((r, x))

    changed = 0
    consumed: set[int] = set()
    # Largest families first so each row lands in its best merge.
    for (z, x), members in sorted(
        families.items(), key=lambda item: (-len(item[1]), item[0])
    ):
        live = [(r, y) for r, y in members if r not in consumed]
        if len(live) < 2:
            continue
        ys = [y for _, y in live]
        if len(set(ys)) != len(ys):
            continue  # duplicate-row pass owns identical members
        if not all(
            conflicting(a, b)
            for i, a in enumerate(ys)
            for b in ys[i + 1 :]
        ):
            continue
        for r, _y in live:
            consumed.add(r)
            work.remove_row(r)
        coefs = {x: 1.0, z: -1.0}
        for y in ys:
            coefs[y] = 1.0
        merged = _Row(coefs, "<=", 1.0, name=f"impl_{z}_{x}")
        new_index = len(work.rows)
        work.rows.append(merged)
        for j in coefs:
            work.col_rows.setdefault(j, set()).add(new_index)
        work.note("implication-merge", len(live))
        changed += len(live)
    return changed


def pass_indicator_merge(work: Work) -> int:
    """Merge rows ``A - p_i <= r`` sharing body A into one scaled row.

    The SADP linearization emits *twin* indicator lower bounds for the
    same arc pattern -- one for ``p_pos`` and one for ``p_neg`` -- so
    after implication merging many rows differ only in their single
    negated binary.  ``k`` such rows with identical positive body
    ``A`` (unit coefficients over binaries, integral at integer
    points) and identical *integral* rhs merge into
    ``k*A - sum p_i <= k*r``:

    - members imply merged (sum them);
    - merged implies members on integer points: ``A <= r`` leaves
      every member slack; ``A == r + 1`` forces ``sum p_i >= k``,
      i.e. all indicators up, which is what each member demands; and
      ``A > r + 1`` violates merged and members alike.

    No conflict witnesses are needed, and ``k*(|A| + 1)`` nonzeros
    become ``|A| + k`` -- a strict win for every ``k >= 2``.
    """
    groups: dict[tuple, list[tuple[int, int]]] = {}
    for r, row in enumerate(work.rows):
        if row is None or row.sense == "==" or len(row.coefs) < 2:
            continue
        flip = -1.0 if row.sense == ">=" else 1.0
        body: list[int] = []
        neg: list[int] = []
        shaped = True
        for j, coef in row.coefs.items():
            value = flip * coef
            if abs(value - 1.0) <= _TOL:
                body.append(j)
            elif abs(value + 1.0) <= _TOL:
                neg.append(j)
            else:
                shaped = False
                break
        if not shaped or len(neg) != 1 or not body:
            continue
        if not all(
            work.integer[j] and work.lb[j] == 0.0 and work.ub[j] == 1.0
            for j in row.coefs
        ):
            continue
        key = (frozenset(body), round(flip * row.rhs, _NORM_DIGITS))
        groups.setdefault(key, []).append((r, neg[0]))

    changed = 0
    for (body_set, rhs), members in groups.items():
        if len(members) < 2:
            continue
        if abs(rhs - round(rhs)) > _TOL:
            # The merged row only implies the members at integer
            # points when the rhs is integral (the argument needs
            # A == r + 1 to force every indicator up); a fractional
            # rhs would make the merge unsound.
            continue
        indicators = [p for _, p in members]
        if len(set(indicators)) != len(indicators):
            continue  # duplicate-row pass owns identical members
        k = float(len(members))
        for r, _p in members:
            work.remove_row(r)
        coefs = {j: k for j in body_set}
        for p in indicators:
            coefs[p] = -1.0
        merged = _Row(coefs, "<=", k * rhs, name=f"ind_{min(body_set)}")
        new_index = len(work.rows)
        work.rows.append(merged)
        for j in coefs:
            work.col_rows.setdefault(j, set()).add(new_index)
        work.note("indicator-merge", len(members))
        changed += len(members)
    return changed


def make_uturn_row_pass(
    pairs: "set[frozenset[int]]",
) -> "Callable[[Work], int]":
    """Build a pass removing exhausted U-turn exclusivity rows.

    ``pairs`` names forward/reverse arc variable pairs of one net
    whose objective costs are strictly positive (the routing caller
    derives them from the graph).  Once every other variable of an
    arc-exclusivity row is fixed, the surviving 2-variable row ``e_a +
    e_rev <= 1`` only forbids the net from traversing the same
    undirected segment in both directions -- a 2-cycle.  Cancelling
    such a cycle keeps every flow-conservation equality balanced (the
    pair enters and leaves both endpoints together), relaxes every
    remaining inequality (the variables appear there with nonnegative
    coefficients in ``<=`` rows and nonpositive in ``>=`` rows), and
    strictly lowers the objective -- so no optimal solution uses one,
    and dropping the row preserves both status and optimal value.

    The structural facts the argument needs are re-verified against
    the *current* (possibly rewritten) rows before each removal, so
    the pass stays sound no matter which other reductions ran first.
    """

    def safe(work: Work, pair_row: int, j: int, other: int) -> bool:
        for r in work.col_rows.get(j, ()):
            if r == pair_row:
                continue
            row = work.rows[r]
            if row is None:
                continue
            coef = row.coefs.get(j)
            if coef is None:
                continue
            if row.sense == "==":
                if abs(coef + row.coefs.get(other, 0.0)) > _TOL:
                    return False
            elif row.sense == "<=":
                if coef < -_TOL:
                    return False
            elif coef > _TOL:
                return False
        return True

    def pass_uturn_rows(work: Work) -> int:
        changed = 0
        for r, row in enumerate(work.rows):
            if (
                row is None
                or row.sense != "<="
                or len(row.coefs) != 2
                or abs(row.rhs - 1.0) > _TOL
            ):
                continue
            pair = frozenset(row.coefs)
            if pair not in pairs:
                continue
            ja, jr = sorted(pair)
            if not all(abs(c - 1.0) <= _TOL for c in row.coefs.values()):
                continue
            if (
                work.obj.get(ja, 0.0) <= _TOL
                or work.obj.get(jr, 0.0) <= _TOL
            ):
                continue
            if not (safe(work, r, ja, jr) and safe(work, r, jr, ja)):
                continue
            work.remove_row(r)
            work.note("uturn-row")
            changed += 1
        return changed

    return pass_uturn_rows


#: The fixpoint pass sequence (order matters only for speed).
PASSES = (
    pass_singleton_rows,
    pass_bound_propagation,
    pass_coefficient_tightening,
    pass_forced_subset,
    pass_dual_fixing,
    pass_duplicate_rows,
    pass_clique_merge,
    pass_implication_merge,
    pass_indicator_merge,
)


# -- extraction -------------------------------------------------------------


def extract_model(work: Work) -> tuple[Model, dict[int, int]]:
    """Build the reduced model; return it plus old->new column map."""
    reduced = Model(name=f"{work.name}__presolved")
    col_map: dict[int, int] = {}
    for j, name in enumerate(work.var_names):
        if j in work.fixed:
            continue
        col_map[j] = reduced.var(
            name, work.lb[j], work.ub[j], integer=work.integer[j]
        ).index
    for row in work.rows:
        if row is None:
            continue
        expr = LinExpr(
            {col_map[j]: coef for j, coef in row.coefs.items()}, -row.rhs
        )
        reduced.constraints.append(Constraint(expr, row.sense, row.name))
    objective = LinExpr(
        {col_map[j]: coef for j, coef in work.obj.items() if j in col_map},
        work.obj_const,
    )
    reduced.objective = objective
    return reduced, col_map


def live_counts(work: Work) -> tuple[int, int, int]:
    """(rows, cols, nonzeros) still present in the working model."""
    rows = sum(1 for row in work.rows if row is not None)
    cols = len(work.var_names) - len(work.fixed)
    nonzeros = sum(len(row.coefs) for row in work.rows if row is not None)
    return rows, cols, nonzeros


def _unused_variable_value(
    lb: float, ub: float, coef: float
) -> float | None:
    """Optimal value of a variable appearing in no constraint."""
    if coef > 0 or (coef == 0 and not math.isinf(lb)):
        return lb if not math.isinf(lb) else None
    if coef < 0:
        return ub if not math.isinf(ub) else None
    return ub if not math.isinf(ub) else 0.0


def pass_unconstrained_columns(work: Work) -> int:
    """Fix columns that appear in no remaining row to their optimal
    bound (minimization: lb for positive cost, ub for negative)."""
    changed = 0
    for j in range(len(work.var_names)):
        if work.infeasible:
            break
        if j in work.fixed:
            continue
        if work.col_rows.get(j):
            continue
        value = _unused_variable_value(work.lb[j], work.ub[j], work.obj.get(j, 0.0))
        if value is None:
            continue  # unbounded column; leave it for the solver
        work.fix_var(j, value, "appears in no constraint")
        work.note("unconstrained-column")
        changed += 1
    return changed


def var_handle(work: Work, j: int) -> Var:
    """A read-only Var view of working column ``j`` (for diagnostics)."""
    return Var(
        index=j,
        name=work.var_names[j],
        lb=work.lb[j],
        ub=work.ub[j],
        is_integer=work.integer[j],
    )
