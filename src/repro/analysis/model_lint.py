"""Pre-solve linting of built MILP models.

Operates on a constructed :class:`~repro.ilp.model.Model` (and, with
routing-specific checks, a
:class:`~repro.router.formulation.RoutingIlp`) *before* the solver
runs.  Two classes of findings:

``ERROR`` -- the model is guaranteed infeasible or malformed:

- ``constant-infeasible-row``: a constraint with no variables whose
  constant term violates its sense (``3 <= 0``);
- ``bound-infeasible-row``: a row whose extreme activity over the
  variable bounds still cannot satisfy the sense;
- ``empty-integer-domain``: an integer variable whose ``[lb, ub]``
  contains no integer point;
- ``empty-commodity``: a net with no usable arc variables at all
  (every physical arc was pruned by rules/blockages);
- ``disconnected-pin-group``: a pin whose flow-conservation group
  cannot exchange flow with the physical graph (all access vertices
  lost their arcs), with no degenerate source/sink overlap to excuse
  it.

``WARN`` -- model bloat the builder should not produce:

- ``constant-row``: a trivially true constraint (no variables);
- ``unused-variable``: appears in no constraint and carries no
  objective coefficient;
- ``duplicate-row`` / ``dominated-row``: rows with identical
  coefficient vectors where one implies the other;
- ``fixed-variable``: degenerate bounds ``lb == ub``.
"""

from __future__ import annotations

import math

from repro.analysis.findings import LintFinding, LintReport, Severity
from repro.ilp.csr import CsrModel
from repro.ilp.model import Constraint, Model
from repro.router.formulation import RoutingIlp

_TOL = 1e-9

#: Cap on reported findings per code, so a degenerate model does not
#: produce an unbounded report (counts in ``stats`` stay exact).
MAX_FINDINGS_PER_CODE = 20


def lint_model(model: "Model | CsrModel") -> LintReport:
    """Run every model-level check; return all findings plus stats.

    Accepts either representation; a columnar :class:`CsrModel` is
    linted through its lossless object form (lint is a diagnostic
    path, so the conversion cost is acceptable and the per-row checks
    stay single-sourced).
    """
    if isinstance(model, CsrModel):
        model = model.to_model()
    report = LintReport(model_name=model.name, stats=dict(model.stats()))
    counts: dict[str, int] = {}

    def emit(code: str, severity: Severity, message: str, **context) -> None:
        counts[code] = counts.get(code, 0) + 1
        if counts[code] <= MAX_FINDINGS_PER_CODE:
            report.findings.append(
                LintFinding(code, severity, message, dict(context))
            )

    _check_rows(model, emit)
    _check_variables(model, emit)
    _check_duplicates(model, emit)

    for code, n in sorted(counts.items()):
        report.stats[f"n_{code.replace('-', '_')}"] = n
    return report


def lint_routing_ilp(ilp: RoutingIlp) -> LintReport:
    """Model lint plus routing-structure checks on a built ILP."""
    report = lint_model(ilp.model)
    _check_commodities(ilp, report)
    return report


# -- row checks -------------------------------------------------------------


def _row_activity_range(
    model: Model, constraint: Constraint
) -> tuple[float, float]:
    """Min/max of ``expr`` (including its constant) over variable bounds."""
    lo = hi = constraint.expr.const
    for index, coef in constraint.expr.coefs.items():
        var = model.variables[index]
        a, b = coef * var.lb, coef * var.ub
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _check_rows(model: Model, emit) -> None:
    for row, con in enumerate(model.constraints):
        label = con.name or f"row {row}"
        if not con.expr.coefs:
            const = con.expr.const
            violated = (
                (con.sense == "<=" and const > _TOL)
                or (con.sense == ">=" and const < -_TOL)
                or (con.sense == "==" and abs(const) > _TOL)
            )
            if violated:
                emit(
                    "constant-infeasible-row",
                    Severity.ERROR,
                    f"{label}: constant-only constraint "
                    f"{const:g} {con.sense} 0 cannot hold",
                    row=row,
                    const=const,
                    sense=con.sense,
                )
            else:
                emit(
                    "constant-row",
                    Severity.WARN,
                    f"{label}: constraint has no variables",
                    row=row,
                )
            continue
        lo, hi = _row_activity_range(model, con)
        infeasible = (
            (con.sense == "<=" and lo > _TOL)
            or (con.sense == ">=" and hi < -_TOL)
            or (con.sense == "==" and (lo > _TOL or hi < -_TOL))
        )
        if infeasible:
            emit(
                "bound-infeasible-row",
                Severity.ERROR,
                f"{label}: activity range [{lo:g}, {hi:g}] cannot "
                f"satisfy {con.sense} 0",
                row=row,
                lo=lo,
                hi=hi,
                sense=con.sense,
            )


# -- variable checks --------------------------------------------------------


def _check_variables(model: Model, emit) -> None:
    referenced: set[int] = set()
    for con in model.constraints:
        referenced.update(con.expr.coefs)
    objective = {i for i, c in model.objective.coefs.items() if c != 0.0}
    for var in model.variables:
        if var.is_integer and math.ceil(var.lb - _TOL) > math.floor(var.ub + _TOL):
            emit(
                "empty-integer-domain",
                Severity.ERROR,
                f"integer variable {var.name}: no integer point in "
                f"[{var.lb:g}, {var.ub:g}]",
                var=var.name,
            )
        elif var.lb == var.ub:
            emit(
                "fixed-variable",
                Severity.WARN,
                f"variable {var.name} is fixed to {var.lb:g}",
                var=var.name,
            )
        if var.index not in referenced and var.index not in objective:
            emit(
                "unused-variable",
                Severity.WARN,
                f"variable {var.name} appears in no constraint and has "
                "zero objective coefficient",
                var=var.name,
            )


# -- duplicate / dominated rows ---------------------------------------------


def _check_duplicates(model: Model, emit) -> None:
    # Bucket rows by support signature (sense + sorted variable index
    # set), then normalize each row by a positive scale inside the
    # bucket.  Support collisions are rare in routing models, so the
    # within-bucket comparison stays near-linear in row count, and
    # positive-scale normalization also catches scaled copies (e.g.
    # ``2x + 2y <= 2`` duplicating ``x + y <= 1``) that an exact
    # coefficient-vector grouping misses.  Normalized form is
    # ``expr + const (sense) 0``, i.e. rhs = -const.
    groups: dict[tuple, list[tuple[int, float]]] = {}
    for row, con in enumerate(model.constraints):
        if not con.expr.coefs:
            continue  # constant rows are handled by _check_rows
        support = tuple(sorted(con.expr.coefs))
        # Dividing by |coef| keeps the scale positive, so the sense is
        # preserved and rows that are positive multiples of each other
        # land on the same normalized key.
        scale = abs(con.expr.coefs[support[0]]) or 1.0
        normalized = tuple(
            round(con.expr.coefs[j] / scale, 12) for j in support
        )
        signature = (con.sense, support, normalized)
        groups.setdefault(signature, []).append((row, -con.expr.const / scale))
    for (sense, _, _), rows in groups.items():
        if len(rows) < 2:
            continue
        if sense == "<=":
            keep = min(rows, key=lambda item: item[1])
        elif sense == ">=":
            keep = max(rows, key=lambda item: item[1])
        else:
            keep = rows[0]
        for row, rhs in rows:
            if row == keep[0]:
                continue
            if rhs == keep[1]:
                emit(
                    "duplicate-row",
                    Severity.WARN,
                    f"row {row} duplicates row {keep[0]}",
                    row=row,
                    duplicate_of=keep[0],
                )
            else:
                emit(
                    "dominated-row",
                    Severity.WARN,
                    f"row {row} (rhs {rhs:g}) is implied by row "
                    f"{keep[0]} (rhs {keep[1]:g})",
                    row=row,
                    dominated_by=keep[0],
                )


# -- routing-structure checks ----------------------------------------------


def _check_commodities(ilp: RoutingIlp, report: LintReport) -> None:
    """Flow-conservation groups that cannot carry their commodity."""
    graph = ilp.graph
    for nv in ilp.nets:
        physical = [
            arc for arc in nv.e if graph.arcs[arc].layer != -1
        ]
        if not physical:
            src = set(nv.net.source.access)
            if not all(set(sink.access) & src for sink in nv.net.sinks):
                report.findings.append(
                    LintFinding(
                        "empty-commodity",
                        Severity.ERROR,
                        f"net {nv.net.name}: no usable physical arcs "
                        "survive rule pruning",
                        {"net": nv.net.name},
                    )
                )
            continue
        covered: set[int] = set()
        for arc_index in physical:
            arc = graph.arcs[arc_index]
            covered.add(arc.tail)
            covered.add(arc.head)
        source_vids = {graph.vid(*v) for v in nv.net.source.access}
        sink_vid_sets = [
            {graph.vid(*v) for v in sink.access} for sink in nv.net.sinks
        ]
        for pin_no, pin in enumerate(nv.net.pins):
            vids = {graph.vid(*v) for v in pin.access}
            if vids & covered:
                continue
            if pin_no > 0 and vids & source_vids:
                continue  # sink shares metal with the source: trivially wired
            if pin_no == 0 and all(s & source_vids for s in sink_vid_sets):
                continue  # every sink overlaps the source: no flow needed
            role = "source" if pin_no == 0 else f"sink {pin_no - 1}"
            report.findings.append(
                LintFinding(
                    "disconnected-pin-group",
                    Severity.ERROR,
                    f"net {nv.net.name} {role}: no access vertex touches "
                    "a usable physical arc",
                    {"net": nv.net.name, "pin": pin_no},
                )
            )
    report.stats["n_empty_commodity"] = report.count("empty-commodity")
    report.stats["n_disconnected_pin_group"] = report.count(
        "disconnected-pin-group"
    )
