"""Presolve engine: fixpoint model reduction with verified lifting.

Promotes the facts PR 1's linter only *reported* into model rewrites:

1. :func:`presolve_model` runs the sound reduction passes of
   :mod:`repro.analysis.reductions` to a fixpoint and returns a
   reduced model plus a :class:`PresolveTrace` that makes every
   transformation invertible;
2. :func:`presolve_routing_ilp` additionally seeds variable fixes
   from certify-style per-net reachability over the rule-pruned
   routing graph (arcs no supersource->supersink flow can ever use
   are fixed to 0) and counts empty commodities;
3. :func:`solve_reduced` splits the reduced model into independent
   connected components (:mod:`repro.analysis.decompose`), solves
   each with a caller-supplied backend under a shared deadline, and
   lifts the merged sub-solutions back into the original variable
   space.

Soundness contract: every transformation preserves the model's
*status* (OPTIMAL / INFEASIBLE / UNBOUNDED) and its *optimal
objective value*, but not necessarily the full feasible set -- e.g.
reachability fixing removes flow circulations disconnected from any
commodity path, and unconstrained columns are pinned to their best
bound.  Any feasible point of the reduced model lifts to a feasible
point of the original with the same objective, so LIMIT incumbents
stay valid too.  The contract is enforced by a hypothesis
equivalence sweep (raw vs presolved solve) and by running the DRC
checker as an independent oracle on every lifted routing; see
``docs/static_analysis.md``.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.analysis.csr_reductions import (
    CSR_PASSES,
    CsrWork,
    csr_unconstrained_columns,
    extract_csr_model,
    live_counts_csr,
    load_object_work,
    make_csr_uturn_pass,
    to_object_work,
)
from repro.analysis.decompose import (
    Component,
    CsrComponent,
    decompose_csr,
    decompose_model,
)
from repro.analysis.reductions import (
    PASSES,
    Work,
    extract_model,
    live_counts,
    make_uturn_row_pass,
    pass_unconstrained_columns,
)
from repro.ilp.csr import SENSE_LE, CsrModel
from repro.ilp.model import Model
from repro.ilp.status import Solution, SolveStatus
from repro.router.formulation import RoutingIlp

#: Fixpoint iteration cap; reaching it is unexpected (each iteration
#: must strictly shrink or tighten the model) but keeps presolve total.
MAX_ITERATIONS = 20

#: Backend signature consumed by :func:`solve_reduced`: a model (object
#: or columnar) plus a remaining-time budget in seconds (None =
#: unlimited).  On the columnar presolve path the callable receives
#: :class:`CsrModel` components; backends that only understand object
#: models convert with :meth:`CsrModel.to_model`.
SolverFn = Callable[["Model | CsrModel", "float | None"], Solution]


@dataclass
class PresolveTrace:
    """Auditable record of one presolve run.

    ``col_map`` maps original variable indices to reduced indices and
    ``fixed`` holds the variables presolve eliminated with their
    values, so :meth:`lift` can reconstruct a full-space solution;
    ``pass_counts`` records how often each reduction fired.
    """

    col_map: dict[int, int]
    fixed: dict[int, float]
    pass_counts: dict[str, int]
    iterations: int
    n_vars_before: int
    n_rows_before: int
    n_nonzeros_before: int
    n_vars_after: int
    n_rows_after: int
    n_nonzeros_after: int
    seed_fix_count: int = 0
    empty_commodities: int = 0
    n_components: int = 0
    presolve_seconds: float = 0.0
    infeasible_reason: str | None = None

    def lift(self, reduced_solution: Solution) -> Solution:
        """Map a reduced-space solution back to the original variables.

        The reduced objective already carries the fixed variables'
        contributions in its constant term, so the lifted objective is
        the reduced objective unchanged.
        """
        lifted = Solution(
            status=reduced_solution.status,
            objective=reduced_solution.objective,
            best_bound=reduced_solution.best_bound,
            n_nodes=reduced_solution.n_nodes,
            solve_seconds=reduced_solution.solve_seconds,
        )
        if reduced_solution.values:
            values = dict(self.fixed)
            for old, new in self.col_map.items():
                values[old] = reduced_solution.values.get(new, 0.0)
            lifted.values = values
        elif (
            self.fixed
            and not self.col_map
            and reduced_solution.status
            in (SolveStatus.OPTIMAL, SolveStatus.LIMIT)
        ):
            # A fully-presolved model (no live variables left) solves
            # with an empty value map; the fixed assignments ARE the
            # solution.  With live variables remaining, an empty value
            # map means no incumbent (e.g. LIMIT before any feasible
            # point), and the lifted solution must stay incumbent-free
            # rather than fabricate an all-zeros routing.
            lifted.values = dict(self.fixed)
        return lifted

    def stats(self) -> dict[str, float]:
        """Flat summary for reports/JSON (sizes, removals, timings)."""
        return {
            "rows_before": self.n_rows_before,
            "rows_after": self.n_rows_after,
            "cols_before": self.n_vars_before,
            "cols_after": self.n_vars_after,
            "nonzeros_before": self.n_nonzeros_before,
            "nonzeros_after": self.n_nonzeros_after,
            "rows_removed": self.n_rows_before - self.n_rows_after,
            "cols_removed": self.n_vars_before - self.n_vars_after,
            "nonzeros_removed": self.n_nonzeros_before - self.n_nonzeros_after,
            "iterations": self.iterations,
            "seed_fixes": self.seed_fix_count,
            "empty_commodities": self.empty_commodities,
            "components": self.n_components,
            "presolve_seconds": round(self.presolve_seconds, 6),
        }


class PresolveResult:
    """Reduced model + trace (+ a status when presolve decided one).

    Both the original and the reduced model are available in object
    form (``original``/``reduced``) and, when presolve ran on the
    columnar path, in CSR form (``original_csr``/``reduced_csr``).
    Whichever form presolve produced is authoritative; the other is
    materialized lazily on first access, so the cold path never pays
    for an object model nobody reads.
    """

    def __init__(
        self,
        original: Model | None = None,
        reduced: Model | None = None,
        trace: PresolveTrace | None = None,
        status: SolveStatus | None = None,
        reason: str | None = None,
        original_csr: CsrModel | None = None,
        reduced_csr: CsrModel | None = None,
    ):
        self._original = original
        self._reduced = reduced
        self.trace = trace
        #: ``SolveStatus.INFEASIBLE`` when a reduction proved the model
        #: infeasible; ``None`` when the solver still has to rule.
        self.status = status
        self.reason = reason
        self.original_csr = original_csr
        self.reduced_csr = reduced_csr

    @property
    def original(self) -> Model:
        if self._original is None and self.original_csr is not None:
            self._original = self.original_csr.to_model()
        return self._original

    @original.setter
    def original(self, model: Model) -> None:
        self._original = model

    @property
    def reduced(self) -> Model:
        if self._reduced is None and self.reduced_csr is not None:
            self._reduced = self.reduced_csr.to_model()
        return self._reduced

    @reduced.setter
    def reduced(self, model: Model) -> None:
        self._reduced = model


def presolve_model(
    model: Model,
    seed_fixes: dict[int, float] | None = None,
    seed_reason: str = "seeded fix",
    max_iterations: int = MAX_ITERATIONS,
    extra_passes: "tuple[Callable[[Work], int], ...]" = (),
) -> PresolveResult:
    """Reduce ``model`` to a fixpoint of the pass catalog.

    ``seed_fixes`` (variable index -> value) are applied before the
    first iteration; routing callers seed reachability-proven zeros.
    ``extra_passes`` run after the generic catalog in each iteration
    (routing callers add the structural U-turn row pass).  The input
    model is never mutated.
    """
    t0 = time.perf_counter()
    n_vars_before = model.n_vars
    n_rows_before = model.n_constraints
    n_nonzeros_before = sum(len(c.expr.coefs) for c in model.constraints)

    work = Work.from_model(model)
    if seed_fixes:
        for index, value in seed_fixes.items():
            if work.infeasible:
                break
            work.fix_var(index, value, seed_reason)

    iterations = 0
    while not work.infeasible and iterations < max_iterations:
        iterations += 1
        changed = 0
        for reduction in PASSES + extra_passes:
            if work.infeasible:
                break
            changed += reduction(work)
        if not work.infeasible:
            changed += pass_unconstrained_columns(work)
        if changed == 0:
            break

    reduced, col_map = extract_model(work)
    rows_after, cols_after, nonzeros_after = live_counts(work)
    trace = PresolveTrace(
        col_map=col_map,
        fixed=dict(work.fixed),
        pass_counts=dict(work.counts),
        iterations=iterations,
        n_vars_before=n_vars_before,
        n_rows_before=n_rows_before,
        n_nonzeros_before=n_nonzeros_before,
        n_vars_after=cols_after,
        n_rows_after=rows_after,
        n_nonzeros_after=nonzeros_after,
        seed_fix_count=len(seed_fixes) if seed_fixes else 0,
        presolve_seconds=time.perf_counter() - t0,
        infeasible_reason=work.infeasible_reason,
    )
    status = SolveStatus.INFEASIBLE if work.infeasible else None
    return PresolveResult(
        original=model,
        reduced=reduced,
        trace=trace,
        status=status,
        reason=work.infeasible_reason,
    )


def presolve_csr(
    csr: CsrModel,
    seed_fixes: dict[int, float] | None = None,
    seed_reason: str = "seeded fix",
    max_iterations: int = MAX_ITERATIONS,
    extra_passes: "tuple[Callable[[Work], int], ...]" = (),
    extra_csr_passes: "tuple[Callable[[CsrWork], int], ...]" = (),
) -> PresolveResult:
    """Columnar twin of :func:`presolve_model`: same pass catalog, same
    fixpoint driver, same trace contract, vectorized working state.

    ``extra_csr_passes`` run natively after the catalog each iteration;
    ``extra_passes`` (arbitrary *object* passes) still run after those
    via the :func:`~repro.analysis.csr_reductions.to_object_work`
    bridge, so callers with custom passes fall back automatically
    rather than silently losing them.  The input model is never
    mutated.
    """
    t0 = time.perf_counter()
    n_vars_before = csr.n_vars
    n_rows_before = csr.n_rows
    n_nonzeros_before = int(np.count_nonzero(csr.data))

    work = CsrWork(csr)
    if seed_fixes:
        for index, value in seed_fixes.items():
            if work.infeasible:
                break
            work.fix_var(index, value, seed_reason)

    iterations = 0
    # A pass that last ran clean (returned 0, mutated nothing) at the
    # current generation is guaranteed to run clean again: passes are
    # deterministic functions of the semantic state, and every mutation
    # bumps ``work.generation``.  Skipping them makes the final
    # fixpoint-confirming iteration nearly free without changing a
    # single firing (the object driver's counts/trace stay identical).
    quiet: dict[object, int] = {}

    def run(key: object, fn, *args) -> int:
        if quiet.get(key) == work.generation:
            return 0
        before = work.generation
        delta = fn(*args)
        if delta == 0 and work.generation == before and not work.infeasible:
            quiet[key] = before
        return delta

    while not work.infeasible and iterations < max_iterations:
        iterations += 1
        changed = 0
        for idx, reduction in enumerate(CSR_PASSES + extra_csr_passes):
            if work.infeasible:
                break
            if quiet.get(idx) == work.generation:
                continue
            work.compact()
            changed += run(idx, reduction, work)
        for k, object_pass in enumerate(extra_passes):
            if work.infeasible:
                break
            changed += run(("obj", k), _run_bridged, work, object_pass)
        if not work.infeasible:
            if quiet.get("tail") != work.generation:
                work.compact()
                changed += run("tail", csr_unconstrained_columns, work)
        if changed == 0:
            break

    reduced_csr, col_map = extract_csr_model(work)
    rows_after, cols_after, nonzeros_after = live_counts_csr(work)
    trace = PresolveTrace(
        col_map=col_map,
        fixed=dict(work.fixed),
        pass_counts=dict(work.counts),
        iterations=iterations,
        n_vars_before=n_vars_before,
        n_rows_before=n_rows_before,
        n_nonzeros_before=n_nonzeros_before,
        n_vars_after=cols_after,
        n_rows_after=rows_after,
        n_nonzeros_after=nonzeros_after,
        seed_fix_count=len(seed_fixes) if seed_fixes else 0,
        presolve_seconds=time.perf_counter() - t0,
        infeasible_reason=work.infeasible_reason,
    )
    status = SolveStatus.INFEASIBLE if work.infeasible else None
    return PresolveResult(
        trace=trace,
        status=status,
        reason=work.infeasible_reason,
        original_csr=csr,
        reduced_csr=reduced_csr,
    )


def _run_bridged(work: CsrWork, object_pass) -> int:
    """Run one arbitrary object pass against CSR state via the bridge.

    The reload is skipped when the pass fired nothing: a clean pass
    made no mutations (the same invariant the fixpoint loop rests on),
    so folding the untouched bridge back would be a no-op re-layout.
    """
    bridged = to_object_work(work)
    delta = object_pass(bridged)
    if delta or bridged.infeasible_reason != work.infeasible_reason:
        load_object_work(work, bridged)
    return delta


def reachability_fixes(ilp: RoutingIlp) -> tuple[dict[int, float], int]:
    """Arc variables provably unusable by their net, as zero fixes.

    For each net, a forward BFS from the supersource and a backward
    BFS from the supersinks over exactly the arcs the formulation
    offers the net; an arc whose tail the source cannot reach, or
    whose head cannot reach any sink, can never carry this net's
    flow on a source->sink path.  (It could still carry a closed
    circulation in the raw model; dropping those preserves status and
    optimal objective since arc costs are nonnegative and every
    remaining constraint only benefits.)

    Returns ``(fixes, n_empty_commodities)`` where an empty commodity
    is a net left with no usable arc at all.
    """
    fixes: dict[int, float] = {}
    empty = 0
    graph = ilp.graph
    for nv in ilp.nets:
        out_arcs: dict[int, list[int]] = {}
        in_arcs: dict[int, list[int]] = {}
        for arc_index in nv.e:
            arc = graph.arcs[arc_index]
            out_arcs.setdefault(arc.tail, []).append(arc.head)
            in_arcs.setdefault(arc.head, []).append(arc.tail)
        forward = _bfs(out_arcs, (nv.supersource,))
        backward = _bfs(in_arcs, nv.supersinks)
        live = 0
        for arc_index, e in nv.e.items():
            arc = graph.arcs[arc_index]
            if arc.tail in forward and arc.head in backward:
                live += 1
                continue
            fixes[e.index] = 0.0
            f = nv.f.get(arc_index)
            if f is not None and f.index != e.index:
                fixes[f.index] = 0.0
        if live == 0:
            empty += 1
    return fixes, empty


def _bfs(adjacency: dict[int, list[int]], sources: "tuple[int, ...] | list[int]") -> set[int]:
    seen = set(sources)
    frontier = list(sources)
    while frontier:
        vertex = frontier.pop()
        for neighbor in adjacency.get(vertex, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def _site_usage_coefs(ilp: RoutingIlp, x: int, y: int, z: int) -> dict[int, float]:
    """Variable coefficients of the builder's via-site usage sum at
    cut-layer site ``(x, y, z)`` (mirrors ``_Builder._site_usage``)."""
    coefs: dict[int, float] = {}
    arcs = ilp.graph.via_site_arcs.get((x, y, z))
    if arcs is None:
        return coefs
    for nv in ilp.nets:
        for arc_index in arcs:
            e = nv.e.get(arc_index)
            if e is not None:
                coefs[e.index] = coefs.get(e.index, 0.0) + 1.0
    if ilp.rules.allow_via_shapes:
        vid_low = ilp.graph.vid(x, y, z)
        for inst in ilp.graph.shape_instances:
            if inst.lower_slot != z or vid_low not in inst.lower_members:
                continue
            for nv in ilp.nets:
                for arc_index in ilp.graph.in_arcs[inst.rep]:
                    e = nv.e.get(arc_index)
                    if e is not None:
                        coefs[e.index] = coefs.get(e.index, 0.0) + 1.0
    return coefs


def aggregate_via_adjacency(ilp: RoutingIlp) -> tuple[CsrModel, int, int]:
    """Factor repeated via-site usage sums behind auxiliary binaries.

    Every via-adjacency row is ``u_a + u_b <= 1`` where ``u_s`` is the
    full usage sum of site ``s`` (all nets' up/down via arcs plus any
    covering via shapes); a site's sum is duplicated verbatim into one
    row per restricted neighbor.  For each site where it pays, this
    rewrite introduces a binary ``U_s`` with the defining row
    ``u_s - U_s <= 0`` and shrinks every adjacency row to use ``U_s``
    in place of the sum (and drops the site's arc-exclusivity row
    ``u_s <= 1``, which ``u_s <= U_s <= 1`` subsumes).

    Soundness both ways: ``U_a + U_b <= 1`` with ``u <= U`` implies the
    original ``u_a + u_b <= 1``; conversely any original-feasible point
    extends by ``U_s = min(1, ceil(u_s))``, so status and optimal
    objective are exactly preserved (``U`` carries no objective cost).

    Returns ``(csr, n_rows_rewritten, n_aux_vars)``; the input columnar
    model is returned unchanged when nothing fires, a rewritten copy
    otherwise (same row order the object-model rewrite produced:
    originals with pair rows rewritten in place and exclusivity rows
    dropped, then the defining rows).
    """
    offsets = ilp.rules.via_restriction.blocked_offsets()
    csr = ilp.csr
    if not offsets:
        return csr, 0, 0

    site_coefs: dict[tuple[int, int, int], dict[int, float]] = {}
    for site in ilp.graph.via_site_arcs:
        coefs = _site_usage_coefs(ilp, *site)
        if coefs:
            site_coefs[site] = coefs

    # Index candidate rows (normalized `expr - 1 <= 0`) by signature.
    sig_to_rows: dict[frozenset[tuple[int, float]], list[int]] = {}
    indptr = csr.indptr
    for index in np.flatnonzero(
        (csr.senses == SENSE_LE) & (csr.row_const == -1.0)
    ).tolist():
        s, e = int(indptr[index]), int(indptr[index + 1])
        sig = frozenset(
            zip(csr.indices[s:e].tolist(), csr.data[s:e].tolist())
        )
        sig_to_rows.setdefault(sig, []).append(index)

    # Match adjacency rows to unordered site pairs, builder-style.
    pair_rows: dict[int, tuple[tuple[int, int, int], tuple[int, int, int]]] = {}
    degree: dict[tuple[int, int, int], int] = {}
    for (x, y, z), here in site_coefs.items():
        for dx, dy in offsets:
            if (x + dx, y + dy) < (x, y):
                continue  # each unordered pair once, like the builder
            other_site = (x + dx, y + dy, z)
            there = site_coefs.get(other_site)
            if there is None:
                continue
            merged = dict(here)
            for j, c in there.items():
                merged[j] = merged.get(j, 0.0) + c
            for index in sig_to_rows.get(frozenset(merged.items()), ()):
                if index not in pair_rows:
                    pair_rows[index] = ((x, y, z), other_site)
                    degree[(x, y, z)] = degree.get((x, y, z), 0) + 1
                    degree[other_site] = degree.get(other_site, 0) + 1
                    break

    # The site's own exclusivity row `u_s <= 1` (present when no shape
    # usage widens the sum past one arc pair) is subsumed once U_s
    # exists, so it counts toward the aggregation benefit.
    excl_rows: dict[tuple[int, int, int], int] = {}
    for site, coefs in site_coefs.items():
        if site not in degree:
            continue
        for index in sig_to_rows.get(frozenset(coefs.items()), ()):
            if index not in pair_rows and index not in excl_rows.values():
                excl_rows[site] = index
                break

    # Aggregate a site only when it shrinks nonzeros: the defining row
    # costs |u|+1 and one nonzero per adjacency row, against |u| saved
    # in each of the d adjacency rows (plus the exclusivity row).
    aggregated: dict[tuple[int, int, int], int] = {}
    for site, d in degree.items():
        u = len(site_coefs[site])
        excl = 1 if site in excl_rows else 0
        if u * (d + excl - 1) > d + 1:
            aggregated[site] = 0
    if not aggregated:
        return csr, 0, 0

    n0 = csr.n_vars
    var_names = list(csr.var_names)
    for k, site in enumerate(aggregated):
        x, y, z = site
        var_names.append(f"Uvia_{x}_{y}_{z}")
        aggregated[site] = n0 + k
    n_aux = len(aggregated)

    new_rows: dict[int, tuple[list[int], list[float]]] = {}
    rewritten = 0
    for index, (site_a, site_b) in pair_rows.items():
        if site_a not in aggregated and site_b not in aggregated:
            continue
        coefs: dict[int, float] = {}
        for site in (site_a, site_b):
            aux = aggregated.get(site)
            if aux is not None:
                coefs[aux] = coefs.get(aux, 0.0) + 1.0
            else:
                for j, c in site_coefs[site].items():
                    coefs[j] = coefs.get(j, 0.0) + c
        new_rows[index] = (list(coefs.keys()), list(coefs.values()))
        rewritten += 1

    drop = {excl_rows[site] for site in aggregated if site in excl_rows}

    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    counts: list[int] = []
    senses_out: list[int] = []
    row_const_out: list[float] = []
    names_out: list[str] = []
    senses = csr.senses.tolist()
    row_consts = csr.row_const.tolist()
    for r in range(csr.n_rows):
        if r in drop:
            continue
        replacement = new_rows.get(r)
        if replacement is None:
            s, e = int(indptr[r]), int(indptr[r + 1])
            cols_parts.append(csr.indices[s:e])
            vals_parts.append(csr.data[s:e])
            counts.append(e - s)
        else:
            cols, vals = replacement
            cols_parts.append(np.asarray(cols, dtype=np.int64))
            vals_parts.append(np.asarray(vals, dtype=np.float64))
            counts.append(len(cols))
        senses_out.append(senses[r])
        row_const_out.append(row_consts[r])
        names_out.append(csr.row_names[r])
    for site, aux in aggregated.items():
        coefs = site_coefs[site]
        cols_parts.append(
            np.asarray(list(coefs.keys()) + [aux], dtype=np.int64)
        )
        vals_parts.append(
            np.asarray(list(coefs.values()) + [-1.0], dtype=np.float64)
        )
        counts.append(len(coefs) + 1)
        senses_out.append(SENSE_LE)
        row_const_out.append(0.0)
        names_out.append("")

    new_indptr = np.zeros(len(senses_out) + 1, dtype=np.int64)
    np.cumsum(np.asarray(counts, dtype=np.int64), out=new_indptr[1:])
    new = CsrModel(
        name=csr.name,
        var_names=var_names,
        lb=np.concatenate((csr.lb, np.zeros(n_aux))),
        ub=np.concatenate((csr.ub, np.ones(n_aux))),
        integer=np.concatenate((csr.integer, np.ones(n_aux, dtype=bool))),
        obj=np.concatenate((csr.obj, np.zeros(n_aux))),
        obj_const=csr.obj_const,
        indptr=new_indptr,
        indices=np.concatenate(cols_parts),
        data=np.concatenate(vals_parts),
        senses=np.asarray(senses_out, dtype=np.int8),
        row_const=np.asarray(row_const_out, dtype=np.float64),
        row_names=names_out,
    )
    return new, rewritten, n_aux


def uturn_pairs(ilp: RoutingIlp) -> set[frozenset[int]]:
    """Forward/reverse arc variable pairs eligible for U-turn removal.

    Only physical arc pairs whose ``e`` variables both carry strictly
    positive objective cost qualify: a 2-cycle over them is never
    optimal, so the exclusivity leftover ``e_a + e_rev <= 1`` can be
    dropped once every other net's variable in the row is fixed (the
    pass re-verifies the surrounding row structure itself).
    """
    pairs: set[frozenset[int]] = set()
    obj = ilp.csr.obj
    for nv in ilp.nets:
        for arc_index, e in nv.e.items():
            arc = ilp.graph.arcs[arc_index]
            if arc.layer == -1 or arc.reverse <= arc.index:
                continue
            rev = nv.e.get(arc.reverse)
            if rev is None:
                continue
            if obj[e.index] > 0.0 and obj[rev.index] > 0.0:
                pairs.add(frozenset((e.index, rev.index)))
    return pairs


def presolve_routing_ilp(
    ilp: RoutingIlp, max_iterations: int = MAX_ITERATIONS
) -> PresolveResult:
    """Presolve a routing ILP, seeded with reachability-proven fixes
    and the via-adjacency usage aggregation."""
    t0 = time.perf_counter()
    fixes, empty = reachability_fixes(ilp)
    csr, n_rewritten, n_aux = aggregate_via_adjacency(ilp)
    pre = presolve_csr(
        csr,
        seed_fixes=fixes,
        seed_reason="arc unreachable on any source->sink path",
        max_iterations=max_iterations,
        extra_csr_passes=(make_csr_uturn_pass(uturn_pairs(ilp)),),
    )
    if n_aux:
        # Report sizes against the *pre-aggregation* model and keep the
        # lifted solution in the original variable space: the auxiliary
        # U variables exist only inside the reduced model.
        n_original_vars = ilp.csr.n_vars
        pre.original_csr = ilp.csr
        pre.original = None
        # Surviving auxiliaries (indices >= n_original_vars in the
        # untrimmed col_map), their defining rows ``usage - U <= 0``
        # (the only rows where an auxiliary carries a negative
        # coefficient), and their nonzeros in the rewritten adjacency
        # rows are aggregation artifacts, not presolve leftovers;
        # exclude them from the *_after counts so the before/after
        # deltas compare like with like in original-model terms and
        # never go negative just because aggregation added auxiliaries.
        aux_live = {
            new for old, new in pre.trace.col_map.items()
            if old >= n_original_vars
        }
        aux_rows = 0
        aux_nonzeros = 0
        red = pre.reduced_csr
        for r in range(red.n_rows):
            s, e = int(red.indptr[r]), int(red.indptr[r + 1])
            row_cols = red.indices[s:e].tolist()
            hits = [k for k, j in enumerate(row_cols) if j in aux_live]
            if not hits:
                continue
            row_vals = red.data[s:e]
            if any(row_vals[k] < 0.0 for k in hits):
                aux_rows += 1
                aux_nonzeros += len(row_cols)
            else:
                aux_nonzeros += len(hits)
        pre.trace.n_vars_after -= len(aux_live)
        pre.trace.n_rows_after -= aux_rows
        pre.trace.n_nonzeros_after -= aux_nonzeros
        pre.trace.col_map = {
            old: new for old, new in pre.trace.col_map.items()
            if old < n_original_vars
        }
        pre.trace.fixed = {
            index: value for index, value in pre.trace.fixed.items()
            if index < n_original_vars
        }
        pre.trace.pass_counts["via-usage-aggregation"] = n_rewritten
        pre.trace.n_vars_before = n_original_vars
        pre.trace.n_rows_before = ilp.csr.n_rows
        pre.trace.n_nonzeros_before = int(np.count_nonzero(ilp.csr.data))
    pre.trace.empty_commodities = empty
    pre.trace.presolve_seconds = time.perf_counter() - t0
    return pre


def solve_reduced(
    pre: PresolveResult,
    solver_fn: SolverFn,
    time_limit: float | None = None,
    decompose: bool = True,
) -> Solution:
    """Solve a presolved model and lift the solution to full space.

    With ``decompose`` the reduced model is split into independent
    connected components solved separately under one shared deadline;
    component objectives add (the reduced objective constant counts
    exactly once).  Status merge: any INFEASIBLE wins, then UNBOUNDED,
    then ERROR, then LIMIT; values/objective are merged only when
    every component produced an incumbent.
    """
    if pre.status is SolveStatus.INFEASIBLE:
        return Solution(status=SolveStatus.INFEASIBLE)
    if pre.reduced_csr is not None:
        # Columnar path: the reduced CSR model is decomposed and handed
        # to the backend directly -- no object model is materialized.
        reduced_csr = pre.reduced_csr
        if not decompose:
            pre.trace.n_components = 1 if reduced_csr.n_vars else 0
            return pre.trace.lift(solver_fn(reduced_csr, time_limit))
        csr_components = decompose_csr(reduced_csr)
        pre.trace.n_components = len(csr_components)
        if not csr_components:
            # Presolve fixed every variable: the model is solved.
            return pre.trace.lift(
                Solution(
                    status=SolveStatus.OPTIMAL,
                    objective=reduced_csr.obj_const,
                    best_bound=reduced_csr.obj_const,
                )
            )
        solutions = _solve_components(
            [c.model for c in csr_components], solver_fn, time_limit
        )
        merged = _merge_component_solutions(
            float(reduced_csr.obj_const), csr_components, solutions
        )
        return pre.trace.lift(merged)

    reduced = pre.reduced
    if not decompose:
        pre.trace.n_components = 1 if reduced.n_vars else 0
        return pre.trace.lift(solver_fn(reduced, time_limit))

    components = decompose_model(reduced)
    pre.trace.n_components = len(components)
    if not components:
        # Presolve fixed every variable: the model is solved.
        return pre.trace.lift(
            Solution(
                status=SolveStatus.OPTIMAL,
                objective=reduced.objective.const,
                best_bound=reduced.objective.const,
            )
        )

    solutions = _solve_components(
        [c.model for c in components], solver_fn, time_limit
    )
    merged = _merge_component_solutions(
        reduced.objective.const, components, solutions
    )
    return pre.trace.lift(merged)


def _solve_components(
    models: "list[Model] | list[CsrModel]",
    solver_fn: SolverFn,
    time_limit: float | None,
) -> list[Solution]:
    """Solve component models sequentially under one shared deadline."""
    deadline = None if time_limit is None else time.perf_counter() + time_limit
    solutions: list[Solution] = []
    for model in models:
        remaining: float | None = None
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                solutions.append(Solution(status=SolveStatus.LIMIT))
                continue
        solutions.append(solver_fn(model, remaining))
    return solutions


_STATUS_PRIORITY = (
    SolveStatus.INFEASIBLE,
    SolveStatus.UNBOUNDED,
    SolveStatus.ERROR,
    SolveStatus.LIMIT,
)


def _merge_component_solutions(
    obj_const: float,
    components: "list[Component] | list[CsrComponent]",
    solutions: list[Solution],
) -> Solution:
    status = SolveStatus.OPTIMAL
    for candidate in _STATUS_PRIORITY:
        if any(s.status is candidate for s in solutions):
            status = candidate
            break
    merged = Solution(
        status=status,
        n_nodes=sum(s.n_nodes for s in solutions),
        solve_seconds=sum(s.solve_seconds for s in solutions),
    )
    if status in (SolveStatus.OPTIMAL, SolveStatus.LIMIT) and all(
        s.objective is not None for s in solutions
    ):
        # Each component model carries a zero objective constant; the
        # parent constant (fixed-variable contributions included) is
        # added exactly once here.
        merged.objective = (
            sum(s.objective for s in solutions if s.objective is not None)
            + obj_const
        )
        # Component objectives are independent, so proven per-component
        # dual bounds add; one missing bound leaves the merge unbounded
        # (None).  Component models carry a zero objective constant.
        bounds = [s.best_bound for s in solutions]
        if all(b is not None for b in bounds):
            merged.best_bound = (
                sum(b for b in bounds if b is not None)
                + obj_const
            )
        values: dict[int, float] = {}
        for component, sub in zip(components, solutions):
            for parent_index, local_index in component.var_map.items():
                values[parent_index] = sub.values.get(local_index, 0.0)
        merged.values = values
    return merged
