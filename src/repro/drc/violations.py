"""DRC violation record."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One design-rule violation found in a routed clip.

    Kinds: ``open`` (net not connected), ``short`` (two nets share a
    vertex), ``direction`` (wire against the layer direction),
    ``via_adjacency``, ``obstacle``, ``pin_short`` (routing over a
    foreign pin), ``sadp_eol``.
    """

    kind: str
    nets: tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {'/'.join(self.nets)}: {self.detail}"
