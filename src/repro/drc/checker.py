"""Geometric design-rule checks on a decoded clip routing."""

from __future__ import annotations

from collections import defaultdict

from repro.clips.clip import Clip, Vertex
from repro.drc.violations import Violation
from repro.router.rules import RuleConfig, eol_grid_offset
from repro.router.solution import ClipRouting, NetSolution


def check_clip_routing(
    clip: Clip,
    rules: RuleConfig,
    routing: ClipRouting,
) -> list[Violation]:
    """Check every rule the configuration enables; return all violations."""
    violations: list[Violation] = []
    by_name = {net.name: net for net in clip.nets}

    violations.extend(_check_connectivity(clip, routing, by_name))
    violations.extend(_check_shorts(routing))
    violations.extend(_check_directions(clip, routing))
    violations.extend(_check_blockages(clip, routing, by_name))
    violations.extend(_check_via_adjacency(rules, routing))
    if rules.sadp_min_metal is not None:
        violations.extend(_check_sadp(clip, rules, routing))
    return violations


# -- connectivity -----------------------------------------------------------


def _net_adjacency(net: NetSolution) -> dict[Vertex, set[Vertex]]:
    adj: dict[Vertex, set[Vertex]] = defaultdict(set)
    for a, b in net.wire_edges:
        adj[a].add(b)
        adj[b].add(a)
    for x, y, z in net.vias:
        adj[(x, y, z)].add((x, y, z + 1))
        adj[(x, y, z + 1)].add((x, y, z))
    for use in net.shape_vias:
        members = list(use.lower_members) + list(use.upper_members)
        # The shape is one conductor: connect all members pairwise
        # through the first member (star) to keep the graph small.
        hub = members[0]
        for member in members[1:]:
            adj[hub].add(member)
            adj[member].add(hub)
    return adj


def _check_connectivity(clip, routing, by_name) -> list[Violation]:
    out = []
    for net_sol in routing.nets:
        clip_net = by_name.get(net_sol.net_name)
        if clip_net is None:
            out.append(
                Violation("open", (net_sol.net_name,), "unknown net in solution")
            )
            continue
        adj = _net_adjacency(net_sol)
        # Pin metal conducts: all access vertices of one pin are one node.
        for pin in clip_net.pins:
            access = sorted(pin.access)
            for vertex in access[1:]:
                adj[access[0]].add(vertex)
                adj[vertex].add(access[0])
        start_candidates = set(clip_net.source.access) & set(adj)
        if not start_candidates:
            # Degenerate: source directly coincides with every sink?
            all_access = set(clip_net.source.access)
            if all(
                set(sink.access) & all_access for sink in clip_net.sinks
            ):
                continue
            out.append(
                Violation(
                    "open", (net_sol.net_name,), "no wiring touches the source pin"
                )
            )
            continue
        reached = set()
        stack = list(start_candidates)
        while stack:
            v = stack.pop()
            if v in reached:
                continue
            reached.add(v)
            stack.extend(adj.get(v, ()))
        for index, sink in enumerate(clip_net.sinks):
            if not (set(sink.access) & reached):
                out.append(
                    Violation(
                        "open",
                        (net_sol.net_name,),
                        f"sink {index} unreachable from the source",
                    )
                )
    return out


# -- shorts / direction / blockages -----------------------------------------


def _check_shorts(routing) -> list[Violation]:
    out = []
    owner: dict[Vertex, str] = {}
    for net_sol in routing.nets:
        for vertex in net_sol.used_vertices():
            previous = owner.get(vertex)
            if previous is not None and previous != net_sol.net_name:
                out.append(
                    Violation(
                        "short",
                        (previous, net_sol.net_name),
                        f"both use vertex {vertex}",
                    )
                )
            else:
                owner[vertex] = net_sol.net_name
    return out


def _check_directions(clip, routing) -> list[Violation]:
    out = []
    for net_sol in routing.nets:
        for a, b in net_sol.wire_edges:
            if a[2] != b[2]:
                out.append(
                    Violation(
                        "direction",
                        (net_sol.net_name,),
                        f"wire edge spans layers: {a} - {b}",
                    )
                )
                continue
            z = a[2]
            horizontal_move = a[1] == b[1] and a[0] != b[0]
            if clip.horizontal[z] != horizontal_move:
                out.append(
                    Violation(
                        "direction",
                        (net_sol.net_name,),
                        f"edge {a}-{b} against layer slot {z} direction",
                    )
                )
    return out


def _check_blockages(clip, routing, by_name) -> list[Violation]:
    out = []
    pin_owner: dict[Vertex, str] = {}
    for net in clip.nets:
        for pin in net.pins:
            for vertex in pin.access:
                pin_owner[vertex] = net.name
    for net_sol in routing.nets:
        for vertex in net_sol.used_vertices():
            if vertex in clip.obstacles:
                out.append(
                    Violation(
                        "obstacle", (net_sol.net_name,), f"uses obstacle {vertex}"
                    )
                )
            owner = pin_owner.get(vertex)
            if owner is not None and owner != net_sol.net_name:
                out.append(
                    Violation(
                        "pin_short",
                        (net_sol.net_name, owner),
                        f"routes over pin vertex {vertex} of {owner}",
                    )
                )
    return out


# -- via adjacency -----------------------------------------------------------


def _all_via_sites(routing) -> list[tuple[str, tuple[int, int, int]]]:
    sites = []
    for net_sol in routing.nets:
        for site in net_sol.vias:
            sites.append((net_sol.net_name, site))
        for use in net_sol.shape_vias:
            for x, y, z in use.lower_members:
                sites.append((net_sol.net_name, (x, y, z)))
    return sites


def _check_via_adjacency(rules, routing) -> list[Violation]:
    offsets = rules.via_restriction.blocked_offsets()
    if not offsets:
        return []
    out = []
    sites = _all_via_sites(routing)
    occupied = {}
    for net_name, site in sites:
        occupied.setdefault(site, net_name)
    for net_name, (x, y, z) in sites:
        for dx, dy in offsets:
            neighbor = (x + dx, y + dy, z)
            if (x + dx, y + dy) < (x, y):
                continue  # report each pair once
            other = occupied.get(neighbor)
            if other is not None:
                out.append(
                    Violation(
                        "via_adjacency",
                        (net_name, other),
                        f"vias at {(x, y, z)} and {neighbor}",
                    )
                )
    return out


# -- SADP end-of-line ---------------------------------------------------------


def _eols_of_net(clip: Clip, net_sol: NetSolution, z: int) -> list[tuple[Vertex, int]]:
    """End-of-lines of a net on layer slot z.

    Returns ``(vertex, side)`` pairs where side is +1 when the metal
    extends in the positive along direction from the EOL vertex (the
    paper's ``p_r`` when the layer is horizontal) and -1 otherwise.
    """
    along_of: dict[Vertex, set[int]] = defaultdict(set)
    for a, b in net_sol.wire_edges:
        if a[2] != z:
            continue
        lo, hi = (a, b) if (a <= b) else (b, a)
        # lo -> hi is the positive along direction (only one coordinate
        # differs on a unidirectional layer).
        along_of[lo].add(1)
        along_of[hi].add(-1)
    eols = []
    for vertex, sides in along_of.items():
        if len(sides) == 1:
            (side,) = sides
            eols.append((vertex, side))
    return eols


def _check_sadp(clip, rules, routing) -> list[Violation]:
    out = []
    for z in range(clip.nz):
        if not rules.sadp_applies_to(clip.metal_of(z)):
            continue
        horizontal = clip.horizontal[z]
        eols: dict[Vertex, list[tuple[str, int]]] = defaultdict(list)
        for net_sol in routing.nets:
            for vertex, side in _eols_of_net(clip, net_sol, z):
                eols[vertex].append((net_sol.net_name, side))

        def offset(v: Vertex, da: int, dc: int) -> Vertex:
            x2, y2 = eol_grid_offset(horizontal, v[0], v[1], da, dc)
            return (x2, y2, v[2])

        for vertex, entries in eols.items():
            for net_name, side in entries:
                # Opposite-polarity patterns: evaluated once, from the
                # p_pos perspective (every pos/neg pair is seen there).
                if side == 1:
                    for da, dc in rules.sadp.opposite_pairs():
                        for other_name, other_side in eols.get(
                            offset(vertex, da, dc), ()
                        ):
                            if other_side == -1:
                                out.append(
                                    Violation(
                                        "sadp_eol",
                                        (net_name, other_name),
                                        f"facing EOLs at {vertex} and "
                                        f"{offset(vertex, da, dc)} on slot {z}",
                                    )
                                )
                # Same-polarity patterns, for both polarities (offsets
                # mirror along the wire direction for p_neg).
                for da, dc in rules.sadp.same_pairs(side):
                    other_vertex = offset(vertex, da, dc)
                    if other_vertex <= vertex:
                        continue  # each unordered pair once
                    for other_name, other_side in eols.get(other_vertex, ()):
                        if other_side == side:
                            out.append(
                                Violation(
                                    "sadp_eol",
                                    (net_name, other_name),
                                    f"misaligned same-side EOLs at {vertex} "
                                    f"and {other_vertex} on slot {z}",
                                )
                            )
    return out
