"""Independent design-rule checking of routed clips.

The ILP *formulation* encodes the rules; this package *verifies* the
decoded geometry against them independently, so formulation bugs
cannot silently pass.  Checks: per-net connectivity, net-to-net
shorts, layer directionality, via adjacency, obstacle and foreign-pin
usage, and SADP end-of-line spacing recomputed from wire geometry.
"""

from repro.drc.violations import Violation
from repro.drc.checker import check_clip_routing

__all__ = ["Violation", "check_clip_routing"]
