"""Placement orientations and rigid transforms (DEF-style)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Orientation(enum.Enum):
    """DEF placement orientations for standard cells.

    Only the four orientations that occur in row-based standard-cell
    placement are supported: north, flipped-south (row flipping), and
    their mirrored variants.
    """

    N = "N"
    S = "S"
    FN = "FN"
    FS = "FS"

    @property
    def flips_y(self) -> bool:
        return self in (Orientation.S, Orientation.FS)

    @property
    def flips_x(self) -> bool:
        return self in (Orientation.S, Orientation.FN)


@dataclass(frozen=True, slots=True)
class Transform:
    """Placement transform: orientation about the cell origin, then a move.

    The transform maps points given in the cell's local frame (origin at
    the cell's lower-left corner, cell size ``width`` x ``height``) into
    chip coordinates.
    """

    offset: Point
    orientation: Orientation
    cell_width: int
    cell_height: int

    def apply_point(self, p: Point) -> Point:
        x, y = p.x, p.y
        if self.orientation.flips_x:
            x = self.cell_width - x
        if self.orientation.flips_y:
            y = self.cell_height - y
        return Point(x + self.offset.x, y + self.offset.y)

    def apply_rect(self, r: Rect) -> Rect:
        a = self.apply_point(Point(r.xlo, r.ylo))
        b = self.apply_point(Point(r.xhi, r.yhi))
        return Rect.from_points(a, b)
