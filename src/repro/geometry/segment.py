"""Axis-parallel wire segment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Segment:
    """An axis-parallel segment between two integer points.

    A zero-length segment (``a == b``) is allowed and represents a via
    landing point or a stub.
    """

    a: Point
    b: Point

    def __post_init__(self) -> None:
        if self.a.x != self.b.x and self.a.y != self.b.y:
            raise ValueError(f"segment must be axis-parallel: {self.a} -> {self.b}")

    @property
    def is_horizontal(self) -> bool:
        """True for horizontal (or zero-length) segments."""
        return self.a.y == self.b.y

    @property
    def is_vertical(self) -> bool:
        """True for vertical (or zero-length) segments."""
        return self.a.x == self.b.x

    @property
    def is_point(self) -> bool:
        return self.a == self.b

    @property
    def length(self) -> int:
        return self.a.manhattan_distance(self.b)

    def canonical(self) -> "Segment":
        """Return the segment with endpoints in sorted order."""
        if (self.b.x, self.b.y) < (self.a.x, self.a.y):
            return Segment(self.b, self.a)
        return self

    def bbox(self) -> Rect:
        return Rect.from_points(self.a, self.b)

    def points(self, step: int = 1) -> list[Point]:
        """All lattice points along the segment at the given step."""
        if step <= 0:
            raise ValueError("step must be positive")
        if self.is_point:
            return [self.a]
        lo, hi = self.canonical().a, self.canonical().b
        if self.is_horizontal:
            return [Point(x, lo.y) for x in range(lo.x, hi.x + 1, step)]
        return [Point(lo.x, y) for y in range(lo.y, hi.y + 1, step)]

    def overlaps(self, other: "Segment") -> bool:
        """True if two collinear segments share at least one point."""
        return self.bbox().intersects(other.bbox())

    def __str__(self) -> str:
        return f"{self.a} -> {self.b}"
