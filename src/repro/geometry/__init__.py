"""Integer-nanometer geometry primitives shared by all subsystems.

All coordinates in the repository are integers in nanometers (database
units).  Using integers everywhere avoids floating-point drift in grid
snapping, legality checks and LEF/DEF round-trips.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.transform import Orientation, Transform

__all__ = ["Point", "Rect", "Segment", "Orientation", "Transform"]
