"""Axis-aligned integer rectangle."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``.

    Degenerate rectangles (zero width or height) are allowed; they are
    useful for track segments and zero-area pin markers.
    """

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(f"malformed rect: {self!r}")

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Bounding box of two points (any corner order)."""
        return cls(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @classmethod
    def from_center(cls, center: Point, width: int, height: int) -> "Rect":
        """Rectangle of the given size centered on ``center``.

        Width and height must be even so the result stays on integer
        coordinates.
        """
        if width < 0 or height < 0:
            raise ValueError("width/height must be non-negative")
        if width % 2 or height % 2:
            raise ValueError("width/height must be even for integer centering")
        return cls(
            center.x - width // 2,
            center.y - height // 2,
            center.x + width // 2,
            center.y + height // 2,
        )

    @property
    def width(self) -> int:
        return self.xhi - self.xlo

    @property
    def height(self) -> int:
        return self.yhi - self.ylo

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Center point, rounded down to integer coordinates."""
        return Point((self.xlo + self.xhi) // 2, (self.ylo + self.yhi) // 2)

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside (or on the boundary of) self."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least a point."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def overlaps_open(self, other: "Rect") -> bool:
        """True if the rectangles share interior area (not just an edge)."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Intersection rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def union(self, other: "Rect") -> "Rect":
        """Bounding box of both rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: int) -> "Rect":
        """Rectangle grown by ``margin`` on every side (may be negative)."""
        r = Rect.__new__(Rect)
        object.__setattr__(r, "xlo", self.xlo - margin)
        object.__setattr__(r, "ylo", self.ylo - margin)
        object.__setattr__(r, "xhi", self.xhi + margin)
        object.__setattr__(r, "yhi", self.yhi + margin)
        if r.xlo > r.xhi or r.ylo > r.yhi:
            raise ValueError("negative margin collapsed the rectangle")
        return r

    def translated(self, dx: int, dy: int) -> "Rect":
        """Copy moved by (dx, dy)."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def distance_to(self, other: "Rect") -> int:
        """Minimum Manhattan gap between two rectangles (0 when touching)."""
        dx = max(0, max(self.xlo, other.xlo) - min(self.xhi, other.xhi))
        dy = max(0, max(self.ylo, other.ylo) - min(self.yhi, other.yhi))
        return dx + dy

    def __str__(self) -> str:
        return f"[{self.xlo},{self.ylo} .. {self.xhi},{self.yhi}]"
