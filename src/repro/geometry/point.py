"""2-D integer point."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """An immutable 2-D point with integer nanometer coordinates."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy moved by (dx, dy)."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> int:
        """L1 distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev_distance(self, other: "Point") -> int:
        """L-infinity distance to ``other``."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __str__(self) -> str:
        return f"({self.x}, {self.y})"
