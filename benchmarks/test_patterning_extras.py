"""Patterning-technology extras: LELE decomposition and redundant vias.

Two analyses adjacent to the paper's LELE-vs-SADP comparison:

- LELE double-patterning decomposition of OptRouter solutions
  (conflict counts at same-mask reach 1 and 2), and
- redundant-via insertion rates (footnote 2's manufacturability
  lever) under each via-restriction tier.
"""

import pytest

from repro.clips import SyntheticClipSpec, make_synthetic_clip
from repro.router import OptRouter, RuleConfig, ViaRestriction
from repro.router.coloring import decompose_lele
from repro.router.redundant import insert_redundant_vias
from repro.util import format_table


def _routed_population(n=5):
    router = OptRouter(time_limit=20.0)
    population = []
    for seed in range(n):
        clip = make_synthetic_clip(
            SyntheticClipSpec(nx=6, ny=8, nz=3, n_nets=3, sinks_per_net=1),
            seed=seed,
        )
        result = router.route(clip, RuleConfig())
        if result.feasible:
            population.append((clip, result.routing))
    return population


def test_lele_decomposition_report(results_dir):
    rows = []
    for clip, routing in _routed_population():
        for reach in (1, 2):
            report = decompose_lele(clip, routing, same_mask_reach=reach)
            rows.append(
                (clip.name, reach, report.total_conflicts,
                 "yes" if report.decomposable else "no")
            )
    table = format_table(
        ("clip", "same-mask reach", "conflicts", "decomposable"),
        rows,
        title="LELE decomposition of OptRouter solutions",
    )
    print("\n" + table)
    (results_dir / "lele_decomposition.txt").write_text(table + "\n")

    # Reach 1 (adjacent tracks only) is always 2-colorable on
    # unidirectional layers; larger reach may not be.
    reach1 = [row for row in rows if row[1] == 1]
    assert all(row[3] == "yes" for row in reach1)


def test_redundant_via_rates(results_dir):
    rows = []
    rates = {}
    for restriction in (
        ViaRestriction.NONE, ViaRestriction.ORTHOGONAL, ViaRestriction.FULL
    ):
        rules = RuleConfig(name=f"VR{restriction.value}",
                           via_restriction=restriction)
        router = OptRouter(time_limit=20.0)
        protected = total = 0
        for seed in range(5):
            clip = make_synthetic_clip(
                SyntheticClipSpec(nx=6, ny=8, nz=3, n_nets=2, sinks_per_net=1),
                seed=seed,
            )
            result = router.route(clip, rules)
            if not result.feasible:
                continue
            report = insert_redundant_vias(clip, result.routing, rules)
            protected += len(report.inserted)
            total += report.n_vias_total
        rate = protected / total if total else 0.0
        rates[restriction] = rate
        rows.append(
            (f"{restriction.value} blocked", total, protected, f"{rate:.2f}")
        )
    table = format_table(
        ("via restriction", "vias", "protected", "rate"),
        rows,
        title="Redundant-via protection rate by via restriction",
    )
    print("\n" + table)
    (results_dir / "redundant_vias.txt").write_text(table + "\n")

    # Stricter adjacency rules cannot make protection easier.
    assert rates[ViaRestriction.FULL] <= rates[ViaRestriction.NONE] + 1e-9


@pytest.mark.benchmark(group="patterning")
def test_bench_decomposition(benchmark):
    population = _routed_population(2)
    if not population:
        pytest.skip("no feasible clips")
    clip, routing = population[0]
    report = benchmark(decompose_lele, clip, routing)
    assert report.layers
