"""Figure 8 reproduction: top-100 pin-cost distributions.

The paper plots the top-100 pin-cost ranges for AES and M0 at several
utilizations (in N7-9T) and observes that the distributions are
neither utilization- nor design-specific.  This bench recomputes the
distributions from extracted clips and checks those two observations.
"""

import pytest

from repro.clips import clip_pin_cost, select_top_clips
from repro.util import format_table


def _top_costs(clips, k):
    return [clip.pin_cost for clip in select_top_clips(clips, k=k)]


def test_fig8_pin_cost_distributions(n7_9t_pipeline, scale, results_dir):
    k = min(scale.top_k * 5, 50)
    rows = []
    ranges = {}
    for design, util, profile, _routed in n7_9t_pipeline.designs:
        clips = n7_9t_pipeline.clips_by_design[design.name]
        if not clips:
            continue
        costs = _top_costs(clips, min(k, len(clips)))
        ranges[design.name] = (min(costs), max(costs))
        rows.append(
            (
                profile.upper(),
                f"{util * 100:.0f}%",
                len(clips),
                f"{min(costs):.1f}",
                f"{max(costs):.1f}",
            )
        )
    table = format_table(
        ("Design", "Util.", "#clips", "top-k min", "top-k max"),
        rows,
        title="Figure 8 (reproduced): top-k pin cost ranges, N7-9T",
    )
    print("\n" + table)
    (results_dir / "fig8.txt").write_text(table + "\n")

    # Paper observation: ranges of different designs overlap (the
    # metric is not design-specific).
    spans = list(ranges.values())
    for (lo_a, hi_a) in spans:
        for (lo_b, hi_b) in spans:
            assert lo_a <= hi_b and lo_b <= hi_a, "disjoint pin-cost ranges"


def test_pin_cost_nonnegative_and_finite(n7_9t_pipeline):
    costs = [clip_pin_cost(clip) for clip in n7_9t_pipeline.clips]
    for cost in costs:
        # Clips containing only boundary crossings score 0 (no cell
        # pins): legitimately easy, never negative.
        assert 0 <= cost < 1e6
    assert any(cost > 0 for cost in costs)


@pytest.mark.benchmark(group="fig8")
def test_bench_pin_cost_scan(benchmark, n7_9t_pipeline):
    """Cost of scanning every clip of a testcase (paper: ~10K clips)."""
    clips = n7_9t_pipeline.clips

    def scan():
        return [clip_pin_cost(clip) for clip in clips]

    costs = benchmark(scan)
    assert len(costs) == len(clips)
