"""Distributed-sweep benchmark: scaling curve + kill-injection smoke.

Regenerates ``BENCH_distributed.json`` at the repo root.  Three claims
are measured, not assumed:

- **Scaling**: the same Δcost sweep runs at 1, 2 and 4 lease-
  coordinated workers.  Per-pair solver latency is calibrated with a
  deterministic SLEEP fault (the clip pool solves in milliseconds, so
  uncalibrated wall clocks would measure process-spawn noise; the
  sleeps release the GIL and overlap across worker processes, which is
  exactly the property a distributed sweep exploits on a multi-core
  box).  Gate: >= 2.5x median wall-clock speedup at 4 workers vs 1.
- **Determinism**: the Δcost table of every distributed run is
  byte-identical to the sequential run -- distribution changes *when*
  answers arrive, never *what* they are.
- **Crash tolerance**: a 4-worker sweep with two workers SIGKILLed
  mid-group (respawn disabled) still completes with zero lost and zero
  duplicated (clip, rule) results, and a resume of its journal
  reproduces the sequential report byte for byte.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.clips import SyntheticClipSpec, make_synthetic_clip
from repro.eval import (
    EvalConfig,
    evaluate_clips,
    format_delta_cost_table,
    paper_rule,
)
from repro.exec import (
    CheckpointJournal,
    FaultKind,
    FaultPlan,
    FaultSpec,
    KillPlan,
    dedupe_results,
)
from repro.router import RuleConfig, ViaRestriction

BENCH_PATH = Path(__file__).parent.parent / "BENCH_distributed.json"

N_CLIPS = 8
SLEEP_SECONDS = 1.0
WORKER_COUNTS = (1, 2, 4)
REPS = 2
SPEEDUP_GATE = 2.5
CHAOS_KILLS = 2
CHAOS_SEED = 0

SPEC = SyntheticClipSpec(
    nx=5, ny=6, nz=3, n_nets=2, sinks_per_net=1,
    access_points_per_pin=2, pin_spacing_cols=1,
)


def clip_pool():
    return [
        make_synthetic_clip(SPEC, seed=s, name=f"dbench_s{s}")
        for s in range(N_CLIPS)
    ]


def rule_set():
    return [
        paper_rule("RULE1"),
        RuleConfig(name="RULE6", via_restriction=ViaRestriction.ORTHOGONAL),
    ]


def latency_plan(clips, rules):
    """Deterministic per-pair solver latency (sleeps overlap across
    processes; the solves themselves finish in milliseconds)."""
    return FaultPlan(by_key={
        (clip.name, rule.name): FaultSpec(
            FaultKind.SLEEP, sleep_seconds=SLEEP_SECONDS
        )
        for clip in clips
        for rule in rules
    })


def eval_config(n_procs=1):
    # audit=False: certification re-solves would double the calibrated
    # latency per pair and measure the verify layer, not distribution.
    # certify/presolve off for the same reason: the serial per-pair
    # solve overhead dilutes the calibrated latency the sweep overlaps.
    return EvalConfig(
        time_limit_per_clip=30.0, n_procs=n_procs, audit=False,
        certify=False, presolve=False,
    )


def run_sweep(tmp_path, tag, n_procs, plan, chaos_kills=0):
    clips, rules = clip_pool(), rule_set()
    path = tmp_path / f"{tag}.jsonl"
    t0 = time.perf_counter()
    study = evaluate_clips(
        clips, rules, eval_config(n_procs),
        checkpoint_path=path,
        fault_plan=plan,
        chaos_kills=chaos_kills,
        chaos_seed=CHAOS_SEED,
    )
    return study, time.perf_counter() - t0, path


def snapshot(study):
    return {
        rule: [
            (o.clip_name, o.status.value, o.cost)
            for o in study.outcomes[rule]
        ]
        for rule in study.rule_names
    }


def test_bench_distributed_scaling_and_chaos(tmp_path):
    clips, rules = clip_pool(), rule_set()
    plan = latency_plan(clips, rules)
    n_pairs = len(clips) * len(rules)

    sequential, _, _ = run_sweep(tmp_path, "reference", 1, plan)
    reference_table = format_delta_cost_table(sequential)
    reference_snapshot = snapshot(sequential)

    walls: dict[int, list[float]] = {w: [] for w in WORKER_COUNTS}
    table_mismatches = 0
    for rep in range(REPS):
        for n_procs in WORKER_COUNTS:
            study, wall, _ = run_sweep(
                tmp_path, f"scale-{n_procs}w-r{rep}", n_procs, plan
            )
            walls[n_procs].append(wall)
            if format_delta_cost_table(study) != reference_table:
                table_mismatches += 1
            assert snapshot(study) == reference_snapshot

    medians = {w: statistics.median(walls[w]) for w in WORKER_COUNTS}
    speedup_4w = medians[1] / medians[4]

    # -- kill-injection smoke: 4 workers, 2 SIGKILLed mid-group -------------
    chaos_study, chaos_wall, chaos_path = run_sweep(
        tmp_path, "chaos", 4, plan, chaos_kills=CHAOS_KILLS
    )
    report = chaos_study.distributed_report
    records = dedupe_results(CheckpointJournal(chaos_path).read())
    chaos_pairs = [(r["clip"], r["rule"]) for r in records]
    expected_pairs = {(c.name, r.name) for c in clips for r in rules}
    lost = sorted(expected_pairs - set(chaos_pairs))
    duplicated = sorted(
        pair for pair in set(chaos_pairs) if chaos_pairs.count(pair) > 1
    )
    chaos_table = format_delta_cost_table(chaos_study)

    # Resume the chaos journal sequentially: byte-identical report.
    resumed = evaluate_clips(
        clips, rules, eval_config(1),
        checkpoint_path=chaos_path, resume=True,
    )
    resumed_table = format_delta_cost_table(resumed)

    payload = {
        "config": {
            "n_clips": N_CLIPS,
            "n_pairs": n_pairs,
            "rules": [r.name for r in rules],
            "sleep_seconds_per_pair": SLEEP_SECONDS,
            "worker_counts": list(WORKER_COUNTS),
            "reps": REPS,
            "speedup_gate": SPEEDUP_GATE,
            "chaos_kills": CHAOS_KILLS,
            "chaos_seed": CHAOS_SEED,
        },
        "scaling": {
            "median_wall_seconds": {
                str(w): round(medians[w], 3) for w in WORKER_COUNTS
            },
            "all_wall_seconds": {
                str(w): [round(t, 3) for t in walls[w]]
                for w in WORKER_COUNTS
            },
            "speedup_4w_vs_1w": round(speedup_4w, 3),
            "delta_table_mismatches": table_mismatches,
        },
        "chaos": {
            "wall_seconds": round(chaos_wall, 3),
            "workers_killed": sorted(report.killed) if report else [],
            "lease_reclaims": report.reclaims if report else 0,
            "respawns": report.respawns if report else 0,
            "inline_groups": len(report.inline_groups) if report else 0,
            "lost_pairs": lost,
            "duplicated_pairs": duplicated,
            "table_matches_sequential": chaos_table == reference_table,
            "resumed_table_matches_sequential":
                resumed_table == reference_table,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Determinism gates: identical Δcost everywhere.
    assert table_mismatches == 0
    assert chaos_table == reference_table
    assert resumed_table == reference_table
    assert snapshot(chaos_study) == reference_snapshot

    # Crash-tolerance gates: both victims shot, nothing lost, nothing
    # duplicated.
    assert report is not None
    assert sorted(report.killed) == sorted(
        KillPlan(4, CHAOS_KILLS, seed=CHAOS_SEED).victims()
    )
    assert lost == []
    assert duplicated == []

    # The headline gate: distribution pays for itself.
    assert speedup_4w >= SPEEDUP_GATE, payload["scaling"]
