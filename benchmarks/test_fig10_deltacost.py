"""Figure 10 reproduction: sorted Δcost per rule configuration.

For each technology, the paper routes its top-100 difficult clips
under every applicable RULE* configuration and plots the sorted Δcost
relative to RULE1.  This bench regenerates those traces (scaled down
by default; REPRO_BENCH_SCALE=paper for full size) and asserts the
qualitative observations of Section 4.2:

- constraints never produce negative Δcost;
- N28-8T shows (weakly) increasing cost across RULE2 -> RULE5 as more
  layers become SADP;
- SADP confined to upper layers (RULE4/RULE5) leaves most clips at
  Δcost 0 in N28-12T and N7-9T;
- RULE8 (SADP >= M3 + via restriction) is at least as hard as RULE3
  and RULE6 alone on N7-9T.
"""

import pytest

from repro.eval import (
    EvalConfig,
    evaluate_clips,
    format_delta_cost_table,
    rules_for_technology,
)
from repro.eval.report import format_sorted_traces

_STUDIES = {}


def study_for(pipeline, scale):
    if pipeline.tech_name not in _STUDIES:
        rules = rules_for_technology(pipeline.tech_name)
        _STUDIES[pipeline.tech_name] = evaluate_clips(
            pipeline.top_clips,
            rules,
            EvalConfig(time_limit_per_clip=scale.time_limit),
        )
    return _STUDIES[pipeline.tech_name]


def _report(study, tech_name, results_dir):
    from repro.eval import format_ranking, rank_rules

    table = format_delta_cost_table(
        study, title=f"Figure 10 (reproduced): Δcost study, {tech_name}"
    )
    traces = format_sorted_traces(study)
    ranking = format_ranking(
        rank_rules(study), title=f"Rule impact ranking, {tech_name}"
    )
    print("\n" + table)
    print(traces)
    print(ranking)
    (results_dir / f"fig10_{tech_name.lower()}.txt").write_text(
        table + "\n\n" + traces + "\n\n" + ranking + "\n"
    )


def _common_assertions(study):
    for rule_name in study.rule_names:
        for delta in study.delta_costs(rule_name):
            assert delta >= 0, f"{rule_name} reduced optimal cost"


def test_fig10a_n28_12t(n28_12t_pipeline, scale, results_dir):
    study = study_for(n28_12t_pipeline, scale)
    _report(study, "N28-12T", results_dir)
    _common_assertions(study)
    # SADP on upper layers only: most clips unaffected.
    if study.delta_costs("RULE5"):
        assert study.zero_delta_fraction("RULE5") >= 0.5


def test_fig10b_n28_8t(n28_8t_pipeline, scale, results_dir):
    study = study_for(n28_8t_pipeline, scale)
    _report(study, "N28-8T", results_dir)
    _common_assertions(study)
    # More SADP layers never cost less (weak monotonicity of means,
    # including infeasibles at the paper's plotting value).
    means = [
        study.mean_delta(f"RULE{i}", include_infeasible=True)
        for i in (5, 4, 3, 2)
        if study.delta_costs(f"RULE{i}")
    ]
    for lighter, heavier in zip(means, means[1:]):
        assert heavier >= lighter - 1e-9


def test_fig10c_n7_9t(n7_9t_pipeline, scale, results_dir):
    study = study_for(n7_9t_pipeline, scale)
    _report(study, "N7-9T", results_dir)
    _common_assertions(study)
    # RULE8 = RULE3's SADP + RULE6's via restriction: at least as much
    # total impact (mean Δcost with infeasibles) as either component.
    if study.delta_costs("RULE8"):
        rule8 = study.mean_delta("RULE8", include_infeasible=True)
        assert rule8 >= study.mean_delta("RULE3", include_infeasible=True) - 1e-9
        assert rule8 >= study.mean_delta("RULE6", include_infeasible=True) - 1e-9


def test_zero_delta_gap_observation(n28_12t_pipeline, scale):
    """Paper observation (2): many clips show zero Δcost under
    upper-layer rules -- the pin-cost metric alone does not capture
    switchbox routability."""
    study = study_for(n28_12t_pipeline, scale)
    if study.delta_costs("RULE4"):
        assert study.zero_delta_fraction("RULE4") > 0.0


@pytest.mark.benchmark(group="fig10")
def test_bench_one_clip_rule_sweep(benchmark, n7_9t_pipeline, scale):
    """Routing one difficult clip through the full N7 rule set."""
    from repro.router import OptRouter

    clip = n7_9t_pipeline.top_clips[-1]  # cheapest of the top-K
    rules = rules_for_technology("N7-9T")
    router = OptRouter(time_limit=scale.time_limit)

    def sweep():
        return [router.route(clip, rule).status for rule in rules]

    statuses = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(statuses) == len(rules)
