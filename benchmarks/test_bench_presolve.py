"""Presolve benchmark: raw vs presolved solves over a top-100 clip set.

Regenerates ``BENCH_presolve.json`` at the repo root: per (clip, rule)
model-size deltas and solve wall times under RULE1 (baseline), RULE7
(via-shape blocking), and RULE11 (SADP + full via blocking), plus
per-rule medians.  The accompanying assertions are the PR's
acceptance gates:

- >= 20% median nonzero reduction on RULE7 and RULE11;
- a positive median solve-time improvement on RULE7 and RULE11
  (presolve overhead is recorded separately — the reduction is a
  one-time cost amortized by checkpoint/resume and by every solver in
  a fallback chain reusing the reduced model);
- zero clips regressing from a decided status to LIMIT, and exact
  status/objective agreement everywhere (the soundness contract,
  measured rather than assumed).

The clip pool intentionally solves fast (sub-second raw solves with a
generous limit): wall-time medians on long MIP solves are dominated by
branching variance, which would measure HiGHS luck, not presolve.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.analysis import presolve_routing_ilp, solve_reduced
from repro.clips import SyntheticClipSpec, make_synthetic_clip, select_top_clips
from repro.eval import paper_rule
from repro.ilp.highs_backend import solve_with_highs
from repro.ilp.status import SolveStatus
from repro.router import OptRouter

BENCH_PATH = Path(__file__).parent.parent / "BENCH_presolve.json"

RULES = ("RULE1", "RULE7", "RULE11")
TIME_LIMIT = 60.0  # >> any raw solve in the pool; LIMIT means a bug

#: 2-pin-net clip shapes (sinks_per_net=1) where the reduction engine
#: has full leverage; pool_size seeds each, ranked by pin cost.
SHAPES = (
    SyntheticClipSpec(nx=4, ny=5, nz=6, n_nets=4, sinks_per_net=1,
                      access_points_per_pin=2),
    SyntheticClipSpec(nx=4, ny=4, nz=6, n_nets=3, sinks_per_net=1,
                      access_points_per_pin=2),
    SyntheticClipSpec(nx=4, ny=5, nz=6, n_nets=3, sinks_per_net=1,
                      access_points_per_pin=2),
)
SEEDS_PER_SHAPE = 50
TOP_K = 100


def clip_pool():
    pool = []
    for shape_no, spec in enumerate(SHAPES):
        for seed in range(SEEDS_PER_SHAPE):
            try:
                clip = make_synthetic_clip(
                    spec, seed=seed, name=f"bench_sh{shape_no}_s{seed}"
                )
            except ValueError:
                continue  # spec too tight for this seed
            pool.append(clip)
    return select_top_clips(pool, k=TOP_K)


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def bench_pair(router, clip, rule_name):
    rules = paper_rule(rule_name)
    ilp = router.build(clip, rules)
    raw, raw_seconds = timed(
        solve_with_highs, ilp.model, time_limit=TIME_LIMIT
    )
    pre, presolve_seconds = timed(presolve_routing_ilp, ilp)
    lifted, solve_seconds = timed(
        solve_reduced, pre, lambda m, t: solve_with_highs(m, time_limit=t),
        TIME_LIMIT,
    )
    stats = pre.trace.stats()
    before = stats["nonzeros_before"]
    return {
        "clip": clip.name,
        "rule": rule_name,
        "nnz_before": before,
        "nnz_after": stats["nonzeros_after"],
        "nnz_reduction": (
            (before - stats["nonzeros_after"]) / before if before else 0.0
        ),
        "rows_before": stats["rows_before"],
        "rows_after": stats["rows_after"],
        "raw_status": raw.status.value,
        "presolved_status": lifted.status.value,
        "raw_objective": raw.objective,
        "presolved_objective": lifted.objective,
        "raw_solve_seconds": round(raw_seconds, 6),
        "presolved_solve_seconds": round(solve_seconds, 6),
        "presolve_seconds": round(presolve_seconds, 6),
    }


def summarize(records):
    out = {}
    for rule_name in RULES:
        rows = [r for r in records if r["rule"] == rule_name]
        out[rule_name] = {
            "n_clips": len(rows),
            "median_nnz_reduction": statistics.median(
                r["nnz_reduction"] for r in rows
            ),
            "median_raw_solve_seconds": statistics.median(
                r["raw_solve_seconds"] for r in rows
            ),
            "median_presolved_solve_seconds": statistics.median(
                r["presolved_solve_seconds"] for r in rows
            ),
            "median_presolve_seconds": statistics.median(
                r["presolve_seconds"] for r in rows
            ),
            "limit_regressions": sum(
                1 for r in rows
                if r["presolved_status"] == SolveStatus.LIMIT.value
                and r["raw_status"] != SolveStatus.LIMIT.value
            ),
            "status_mismatches": sum(
                1 for r in rows if r["presolved_status"] != r["raw_status"]
            ),
        }
    return out


def test_bench_presolve_raw_vs_presolved():
    router = OptRouter(certify=False, presolve=False)
    clips = clip_pool()
    assert len(clips) == TOP_K
    records = [
        bench_pair(router, clip, rule_name)
        for clip in clips
        for rule_name in RULES
    ]
    summary = summarize(records)
    payload = {
        "config": {
            "rules": list(RULES),
            "time_limit_seconds": TIME_LIMIT,
            "top_k": TOP_K,
            "shapes": [
                {
                    "nx": s.nx, "ny": s.ny, "nz": s.nz, "n_nets": s.n_nets,
                    "sinks_per_net": s.sinks_per_net,
                    "access_points_per_pin": s.access_points_per_pin,
                }
                for s in SHAPES
            ],
        },
        "summary": summary,
        "records": records,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Soundness, measured: identical statuses, identical optima.
    for record in records:
        assert record["presolved_status"] == record["raw_status"], record
        if record["raw_status"] == SolveStatus.OPTIMAL.value:
            assert (
                abs(record["presolved_objective"] - record["raw_objective"])
                < 1e-6
            ), record

    for rule_name in ("RULE7", "RULE11"):
        stats = summary[rule_name]
        assert stats["limit_regressions"] == 0
        assert stats["median_nnz_reduction"] >= 0.20, stats
        assert (
            stats["median_presolved_solve_seconds"]
            < stats["median_raw_solve_seconds"]
        ), stats
