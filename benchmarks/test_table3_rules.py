"""Table 3 reproduction: the BEOL rule configuration matrix."""

import pytest

from repro.eval import format_rule_table, paper_rules, rules_for_technology
from repro.router import OptRouter, ViaRestriction
from repro.clips import SyntheticClipSpec, make_synthetic_clip


def test_table3_configuration_matrix(results_dir):
    rules = paper_rules()
    table = format_rule_table(rules, title="Table 3 (reproduced)")
    print("\n" + table)
    (results_dir / "table3.txt").write_text(table + "\n")

    assert len(rules) == 11
    by_name = {r.name: r for r in rules}
    assert by_name["RULE1"].via_restriction is ViaRestriction.NONE
    assert by_name["RULE6"].via_restriction is ViaRestriction.ORTHOGONAL
    assert by_name["RULE9"].via_restriction is ViaRestriction.FULL
    assert [by_name[f"RULE{i}"].sadp_min_metal for i in (2, 3, 4, 5)] == [2, 3, 4, 5]


def test_n7_exclusions_match_paper():
    names = [r.name for r in rules_for_technology("N7-9T")]
    assert names == ["RULE1", "RULE3", "RULE4", "RULE5", "RULE6", "RULE8"]


@pytest.mark.benchmark(group="table3")
def test_bench_model_build_per_rule(benchmark):
    """ILP construction cost across the Table 3 rule spectrum."""
    clip = make_synthetic_clip(
        SyntheticClipSpec(nx=7, ny=10, nz=4, n_nets=3, sinks_per_net=1),
        seed=1,
    )
    rules = paper_rules()
    router = OptRouter()

    def build_all():
        return [router.build(clip, rule).model.n_vars for rule in rules]

    sizes = benchmark(build_all)
    # SADP rules add p variables, so RULE2 (SADP >= M2) builds the
    # largest model of the restriction-free tier.
    assert sizes[1] > sizes[0]
