"""Section 4.2 reproduction: variable/constraint count analysis.

The paper derives how ILP size scales with |A| (arcs), |V| (vertices)
and |N| (nets), and with the via-restriction degree α and via-shape
size β.  This bench measures the built models and checks the claimed
asymptotic behaviours empirically:

- no-restriction variables grow as O(|A| x |N|);
- via restrictions add constraints but no variables;
- SADP adds O(|V| x |N|) p-variables;
- via shapes add O(β x |V| x |N|)-ish variables and O(β²|V||N|)
  blocking constraints.
"""

import pytest

from repro.analysis import lint_routing_ilp
from repro.clips import SyntheticClipSpec, make_synthetic_clip
from repro.router import OptRouter, RuleConfig, ViaRestriction
from repro.router.graph import build_graph
from repro.util import format_table


def clip_with(nx, ny, nz, n_nets, seed=0):
    return make_synthetic_clip(
        SyntheticClipSpec(
            nx=nx, ny=ny, nz=nz, n_nets=n_nets, sinks_per_net=1,
            access_points_per_pin=2, boundary_pin_prob=0.3,
        ),
        seed=seed,
    )


def model_stats(clip, rules):
    return OptRouter().build(clip, rules).model.stats()


class TestScalingLaws:
    def test_variables_scale_with_nets(self):
        base = clip_with(6, 8, 3, 1)
        sizes = []
        for n_nets in (1, 2, 3):
            clip = clip_with(6, 8, 3, n_nets)
            if len(clip.nets) != n_nets:
                pytest.skip("generator dropped a colliding net")
            sizes.append(model_stats(clip, RuleConfig())["n_vars"])
        # Per-net variable blocks: roughly linear growth.
        growth1 = sizes[1] / sizes[0]
        growth2 = sizes[2] / sizes[1]
        assert 1.5 < growth1 < 2.5
        assert 1.2 < growth2 < 1.8
        del base

    def test_via_restriction_adds_constraints_not_vars(self):
        clip = clip_with(6, 8, 3, 2)
        none = model_stats(clip, RuleConfig())
        ortho = model_stats(
            clip, RuleConfig(via_restriction=ViaRestriction.ORTHOGONAL)
        )
        full = model_stats(clip, RuleConfig(via_restriction=ViaRestriction.FULL))
        assert ortho["n_vars"] == none["n_vars"]
        assert full["n_vars"] == none["n_vars"]
        assert ortho["n_constraints"] > none["n_constraints"]
        assert full["n_constraints"] > ortho["n_constraints"]

    def test_sadp_adds_p_variables(self):
        clip = clip_with(6, 8, 3, 2)
        none = model_stats(clip, RuleConfig())
        sadp = model_stats(clip, RuleConfig(sadp_min_metal=2))
        added = sadp["n_vars"] - none["n_vars"]
        n_vertices = clip.n_vertices
        n_nets = len(clip.nets)
        assert 0 < added <= 2 * n_vertices * n_nets  # <= two p per vertex/net

    def test_via_shapes_add_vars_and_blocking(self):
        clip = clip_with(6, 8, 3, 2)
        none = model_stats(clip, RuleConfig())
        shaped = model_stats(clip, RuleConfig(allow_via_shapes=True))
        assert shaped["n_vars"] > none["n_vars"]
        assert shaped["n_constraints"] > none["n_constraints"]

    def test_graph_arc_count_formula(self):
        # |A| for a clip: 2 x (wire pairs + via pairs).
        clip = clip_with(6, 8, 3, 1)
        g = build_graph(clip, RuleConfig())
        wire_pairs = 0
        for z in range(clip.nz):
            if clip.horizontal[z]:
                wire_pairs += (clip.nx - 1) * clip.ny
            else:
                wire_pairs += clip.nx * (clip.ny - 1)
        via_pairs = clip.nx * clip.ny * (clip.nz - 1)
        assert len(g.arcs) == 2 * (wire_pairs + via_pairs)


_TABLE_RULES = (
    RuleConfig(name="RULE1"),
    RuleConfig(name="RULE6", via_restriction=ViaRestriction.ORTHOGONAL),
    RuleConfig(name="RULE9", via_restriction=ViaRestriction.FULL),
    RuleConfig(name="RULE2", sadp_min_metal=2),
    RuleConfig(name="SHAPES", allow_via_shapes=True),
)


def test_s42_model_size_table(results_dir):
    rows = []
    clip = clip_with(7, 10, 4, 3)
    for rules in _TABLE_RULES:
        stats = model_stats(clip, rules)
        rows.append(
            (
                rules.name,
                stats["n_vars"],
                stats["n_integer_vars"],
                stats["n_constraints"],
                stats["n_nonzeros"],
            )
        )
    table = format_table(
        ("rule", "vars", "int vars", "constraints", "nonzeros"),
        rows,
        title="Section 4.2 (reproduced): ILP size per rule configuration",
    )
    print("\n" + table)
    (results_dir / "s42_model_size.txt").write_text(table + "\n")


def test_s42_lint_stats_table(results_dir):
    """Pre-solve lint pass over the Section 4.2 models.

    Every built paper-configuration ILP must lint clean of ERROR
    findings (the clip is routable, so an error would be a false
    positive by the linter's soundness contract); warning counts are
    recorded as a formulation-bloat regression canary.
    """
    clip = clip_with(7, 10, 4, 3)
    router = OptRouter()
    rows = []
    for rules in _TABLE_RULES:
        report = lint_routing_ilp(router.build(clip, rules))
        assert not report.has_errors, [str(f) for f in report.errors]
        rows.append(
            (
                rules.name,
                report.stats["n_vars"],
                report.stats["n_constraints"],
                len(report.warnings),
                report.stats.get("n_duplicate_row", 0),
                report.stats.get("n_dominated_row", 0),
                report.stats.get("n_unused_variable", 0),
            )
        )
    table = format_table(
        ("rule", "vars", "constraints", "warnings", "dup rows",
         "dominated", "unused vars"),
        rows,
        title="Pre-solve lint statistics per rule configuration",
    )
    print("\n" + table)
    (results_dir / "s42_lint_stats.txt").write_text(table + "\n")


def test_lint_time_stays_linear_in_rows():
    """Support-signature bucketing keeps lint near-linear in row count.

    The via-shape configuration builds the largest Section 4.2 model;
    an all-pairs duplicate scan made lint dominate bench time here, so
    the bound is a regression canary for the bucketed implementation.
    """
    import time

    clip = clip_with(7, 10, 4, 3)
    ilp = OptRouter().build(clip, RuleConfig(allow_via_shapes=True))
    t0 = time.perf_counter()
    report = lint_routing_ilp(ilp)
    elapsed = time.perf_counter() - t0
    assert not report.has_errors
    # Generous wall-clock ceiling (~50x observed on a laptop): catches
    # a quadratic regression without flaking on slow CI machines.
    assert elapsed < 5.0, f"lint took {elapsed:.2f}s on {ilp.model.stats()}"


@pytest.mark.benchmark(group="s42")
def test_bench_model_build(benchmark):
    clip = clip_with(7, 10, 4, 3)
    router = OptRouter()
    ilp = benchmark(router.build, clip, RuleConfig(sadp_min_metal=2))
    assert ilp.model.n_vars > 0
