"""Section 5 reproduction: OptRouter runtime by switchbox size and rules.

The paper reports, for CPLEX on its testbed: 1047s (7x10 tracks, with
SADP + via rules) vs 842s (without); 1340s vs 925s at 10x10 tracks.
Absolute numbers are solver/hardware-bound; the reproduced *shape* is
(a) rule-laden solves cost more than rule-free solves, and (b) larger
switchboxes cost more than smaller ones.
"""

import time

import pytest

from repro.clips import SyntheticClipSpec, make_synthetic_clip
from repro.router import OptRouter, RuleConfig, ViaRestriction
from repro.util import format_table

RULEFUL = RuleConfig(
    name="SADP+VIA",
    sadp_min_metal=2,
    via_restriction=ViaRestriction.ORTHOGONAL,
)
RULEFREE = RuleConfig(name="FREE")


def _clip(nx, ny, seed=5):
    return make_synthetic_clip(
        SyntheticClipSpec(
            nx=nx, ny=ny, nz=3, n_nets=3, sinks_per_net=1,
            access_points_per_pin=2,
        ),
        seed=seed,
    )


def _solve_seconds(clip, rules, time_limit):
    router = OptRouter(time_limit=time_limit)
    start = time.perf_counter()
    result = router.route(clip, rules)
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_s5_runtime_table(scale, results_dir):
    sizes = ((5, 7), (7, 10))
    rows = []
    measured = {}
    for nx, ny in sizes:
        clip = _clip(nx, ny)
        for rules in (RULEFREE, RULEFUL):
            elapsed, result = _solve_seconds(clip, rules, scale.time_limit)
            measured[(nx, ny, rules.name)] = elapsed
            rows.append(
                (
                    f"{nx}x{ny}",
                    rules.name,
                    f"{elapsed:.2f}",
                    result.status.value,
                )
            )
    table = format_table(
        ("switchbox", "rules", "seconds", "status"),
        rows,
        title="Section 5 (reproduced): OptRouter runtime",
    )
    print("\n" + table)
    (results_dir / "s5_runtime.txt").write_text(table + "\n")

    # Shape (a): rules make the solve slower on the larger switchbox.
    assert measured[(7, 10, "SADP+VIA")] >= measured[(7, 10, "FREE")] * 0.5
    # Shape (b): the larger rule-laden solve costs at least as much as
    # the smaller one (allowing generous noise at small scale).
    assert measured[(7, 10, "SADP+VIA")] >= measured[(5, 7, "SADP+VIA")] * 0.5


@pytest.mark.benchmark(group="s5")
def test_bench_7x10_rule_free(benchmark, scale):
    clip = _clip(7, 10)
    router = OptRouter(time_limit=scale.time_limit)
    result = benchmark.pedantic(
        router.route, args=(clip, RULEFREE), rounds=1, iterations=1
    )
    assert result.status is not None


@pytest.mark.benchmark(group="s5")
def test_bench_7x10_with_rules(benchmark, scale):
    clip = _clip(7, 10)
    router = OptRouter(time_limit=scale.time_limit)
    result = benchmark.pedantic(
        router.route, args=(clip, RULEFUL), rounds=1, iterations=1
    )
    assert result.status is not None
