"""Incremental-solving benchmark: cold vs warm Table-3 sweeps.

Regenerates ``BENCH_incremental.json`` at the repo root.  Two sweeps
run over the same ranked clip pool and all eleven Table-3 rules:

- **cold**: every (clip, rule) pair rebuilds its formulation from
  scratch and solves with no cross-rule information (the pre-PR
  behaviour, ``reuse_formulation=False``);
- **warm**: per clip, RULE1 solves first and its outcome seeds every
  follower rule through the sound shortcuts (inherited infeasibility,
  DRC-verified routing reuse, lower-bound transfer) on top of the
  shared formulation core and the persistent solve cache.

The accompanying assertions are the PR's acceptance gates:

- >= 1.5x median wall-clock speedup on the follower rules
  (RULE2..RULE11, per-pair cold/warm ratio);
- bitwise-equal statuses and equal optimal objectives between the
  sweeps, and zero pairs where warm turns a decided status into LIMIT
  (the soundness contract, measured rather than assumed);
- a replay of the warm sweep against the populated solve cache
  performs **zero** backend solves and reproduces every outcome.

The clip pool intentionally solves fast: wall-time medians on long MIP
solves are dominated by branching variance, which would measure HiGHS
luck rather than the incremental machinery.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.clips import SyntheticClipSpec, make_synthetic_clip, select_top_clips
from repro.eval import paper_rule, paper_rules
from repro.ilp import SolveCache
from repro.router import OptRouter, RouteStatus, WarmStart, is_restriction

BENCH_PATH = Path(__file__).parent.parent / "BENCH_incremental.json"

RULES = [rule.name for rule in paper_rules()]  # RULE1..RULE11
FOLLOWERS = RULES[1:]
TIME_LIMIT = 60.0  # >> any cold solve in the pool; LIMIT means a bug
SPEEDUP_GATE = 1.5

#: Wide, moderately sparse shapes: the RULE1 optimum is DRC-clean
#: under most (not all) follower rules, so the bench exercises both
#: the routing-reuse shortcut and the DRC-rejected cold-solve path.
SHAPES = (
    SyntheticClipSpec(nx=6, ny=5, nz=6, n_nets=3, sinks_per_net=1,
                      access_points_per_pin=2),
    SyntheticClipSpec(nx=6, ny=6, nz=6, n_nets=3, sinks_per_net=1,
                      access_points_per_pin=2),
    SyntheticClipSpec(nx=6, ny=5, nz=6, n_nets=4, sinks_per_net=1,
                      access_points_per_pin=2),
)
SEEDS_PER_SHAPE = 20
TOP_K = 24


def clip_pool():
    pool = []
    for shape_no, spec in enumerate(SHAPES):
        for seed in range(SEEDS_PER_SHAPE):
            try:
                clip = make_synthetic_clip(
                    spec, seed=seed, name=f"bench_sh{shape_no}_s{seed}"
                )
            except ValueError:
                continue  # spec too tight for this seed
            pool.append(clip)
    return select_top_clips(pool, k=TOP_K)


def timed_route(router, clip, rules, warm=None):
    t0 = time.perf_counter()
    result = router.route(clip, rules, warm=warm)
    return result, time.perf_counter() - t0


def warm_start_from(baseline, baseline_rule, rule):
    """Mirror of the sweep scheduler's seeding policy."""
    if not is_restriction(baseline_rule, rule):
        return None
    if baseline.status is RouteStatus.INFEASIBLE and not baseline.degraded:
        return WarmStart(infeasible=True)
    if (
        baseline.status is RouteStatus.OPTIMAL
        and not baseline.degraded
        and baseline.routing is not None
    ):
        return WarmStart(
            routing=baseline.routing,
            cost=baseline.cost,
            lower_bound=baseline.cost,
        )
    return None


def run_cold(clips):
    """One fresh formulation + cold solve per (clip, rule) pair."""
    records = {}
    for clip in clips:
        for rule_name in RULES:
            router = OptRouter(
                time_limit=TIME_LIMIT, reuse_formulation=False
            )
            result, seconds = timed_route(router, clip, paper_rule(rule_name))
            records[(clip.name, rule_name)] = (result, seconds)
    return records


def run_warm(clips, cache):
    """Clip-major sweep: RULE1 first, followers seeded from it."""
    records = {}
    baseline_rule = paper_rule("RULE1")
    for clip in clips:
        router = OptRouter(time_limit=TIME_LIMIT, solve_cache=cache)
        baseline, seconds = timed_route(router, clip, baseline_rule)
        records[(clip.name, "RULE1")] = (baseline, seconds)
        for rule_name in FOLLOWERS:
            rule = paper_rule(rule_name)
            warm = warm_start_from(baseline, baseline_rule, rule)
            result, seconds = timed_route(router, clip, rule, warm=warm)
            records[(clip.name, rule_name)] = (result, seconds)
    return records


def summarize(records):
    speedups = [r["speedup"] for r in records if r["rule"] != "RULE1"]
    by_rule = {}
    for rule_name in RULES:
        rows = [r for r in records if r["rule"] == rule_name]
        by_rule[rule_name] = {
            "n_clips": len(rows),
            "median_cold_seconds": statistics.median(
                r["cold_seconds"] for r in rows
            ),
            "median_warm_seconds": statistics.median(
                r["warm_seconds"] for r in rows
            ),
            "median_speedup": statistics.median(r["speedup"] for r in rows),
            "median_cold_nodes": statistics.median(
                r["cold_nodes"] for r in rows
            ),
            "median_warm_nodes": statistics.median(
                r["warm_nodes"] for r in rows
            ),
            "warm_shortcuts": sum(1 for r in rows if r["warm_used"]),
            "cache_hits": sum(1 for r in rows if r["cache_hit"]),
            "status_mismatches": sum(
                1 for r in rows if r["warm_status"] != r["cold_status"]
            ),
            "limit_regressions": sum(
                1 for r in rows
                if r["warm_status"] == RouteStatus.LIMIT.value
                and r["cold_status"] != RouteStatus.LIMIT.value
            ),
        }
    return {
        "median_follower_speedup": statistics.median(speedups),
        "by_rule": by_rule,
    }


def test_bench_incremental_cold_vs_warm(tmp_path, monkeypatch):
    clips = clip_pool()
    assert len(clips) == TOP_K

    cache = SolveCache(tmp_path / "solve-cache")
    cold = run_cold(clips)
    warm = run_warm(clips, cache)

    records = []
    for clip in clips:
        for rule_name in RULES:
            cold_result, cold_seconds = cold[(clip.name, rule_name)]
            warm_result, warm_seconds = warm[(clip.name, rule_name)]
            records.append({
                "clip": clip.name,
                "rule": rule_name,
                "cold_status": cold_result.status.value,
                "warm_status": warm_result.status.value,
                "cold_objective": cold_result.cost,
                "warm_objective": warm_result.cost,
                "cold_seconds": round(cold_seconds, 6),
                "warm_seconds": round(warm_seconds, 6),
                "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 3),
                "cold_nodes": cold_result.n_nodes,
                "warm_nodes": warm_result.n_nodes,
                "warm_used": warm_result.warm_used,
                "cache_hit": warm_result.cache_hit,
                "warm_build_seconds": round(warm_result.build_seconds, 6),
                "warm_presolve_seconds": round(
                    warm_result.presolve_seconds, 6
                ),
                "warm_solve_seconds": round(warm_result.solve_seconds, 6),
            })

    summary = summarize(records)

    # -- replay: the populated cache satisfies an entire second sweep
    #    without a single backend call.
    import repro.router.optrouter as optrouter_mod

    calls = {"n": 0}
    real_solve_reduced = optrouter_mod.solve_reduced
    real_solve_with_highs = optrouter_mod.solve_with_highs

    def counting_reduced(*args, **kwargs):
        calls["n"] += 1
        return real_solve_reduced(*args, **kwargs)

    def counting_highs(*args, **kwargs):
        calls["n"] += 1
        return real_solve_with_highs(*args, **kwargs)

    monkeypatch.setattr(optrouter_mod, "solve_reduced", counting_reduced)
    monkeypatch.setattr(optrouter_mod, "solve_with_highs", counting_highs)
    replay = run_warm(clips, SolveCache(tmp_path / "solve-cache"))
    monkeypatch.undo()

    replay_backend_calls = calls["n"]
    replay_mismatches = sum(
        1
        for key, (result, _) in warm.items()
        if (result.status, result.cost) != (
            replay[key][0].status, replay[key][0].cost
        )
    )

    payload = {
        "config": {
            "rules": RULES,
            "time_limit_seconds": TIME_LIMIT,
            "top_k": TOP_K,
            "speedup_gate": SPEEDUP_GATE,
            "shapes": [
                {
                    "nx": s.nx, "ny": s.ny, "nz": s.nz, "n_nets": s.n_nets,
                    "sinks_per_net": s.sinks_per_net,
                    "access_points_per_pin": s.access_points_per_pin,
                }
                for s in SHAPES
            ],
        },
        "summary": summary,
        "replay": {
            "backend_calls": replay_backend_calls,
            "outcome_mismatches": replay_mismatches,
        },
        "records": records,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Soundness, measured: identical statuses, identical optima, no
    # new LIMITs.
    for record in records:
        assert record["warm_status"] == record["cold_status"], record
        if record["cold_status"] == RouteStatus.OPTIMAL.value:
            assert (
                abs(record["warm_objective"] - record["cold_objective"])
                < 1e-6
            ), record
    for rule_name in RULES:
        assert summary["by_rule"][rule_name]["limit_regressions"] == 0

    # The headline gate: incremental solving pays for itself.
    assert summary["median_follower_speedup"] >= SPEEDUP_GATE, summary

    # The cache replay is solver-free and outcome-identical.
    assert replay_backend_calls == 0
    assert replay_mismatches == 0
