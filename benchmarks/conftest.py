"""Shared benchmark fixtures: per-technology reproduction pipelines.

Scaling: by default the suite runs "small" (hundreds of instances, a
handful of clips, trimmed metal stack) so it completes on a laptop.
Set ``REPRO_BENCH_SCALE=paper`` for paper-scale parameters (top-100
clips, 8-metal stack, multiple designs/utilizations) -- expect hours,
as the paper itself reports ~1000s per clip.

Each technology pipeline produces: a synthetic library, placed+routed
AES-like and M0-like designs, extracted clips, and the top-K difficult
clips per the pin-cost metric.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.cells import generate_library
from repro.clips import ClipWindowSpec, extract_clips, select_top_clips
from repro.clips.clip import Clip
from repro.netlist import synthesize_design
from repro.place import place_design
from repro.route import RoutingGrid
from repro.route.detailed_router import route_design
from repro.tech import technology_by_name

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """Workload sizing for the benchmark suite."""

    name: str
    n_instances: int
    utilizations: tuple[float, ...]
    top_k: int
    max_metal: int
    time_limit: float
    profiles: tuple[str, ...] = ("aes", "m0")


SMALL = BenchScale(
    name="small",
    n_instances=130,
    utilizations=(0.88,),
    top_k=4,
    max_metal=6,   # M2..M6 -> nz=5 in clips
    time_limit=20.0,
)

PAPER = BenchScale(
    name="paper",
    n_instances=2000,
    utilizations=(0.89, 0.93),
    top_k=100,
    max_metal=8,
    time_limit=1200.0,
)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return PAPER if os.environ.get("REPRO_BENCH_SCALE") == "paper" else SMALL


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@dataclass
class TechPipeline:
    """Everything the benches need for one technology."""

    tech_name: str
    designs: list = field(default_factory=list)  # (design, util, profile)
    clips: list[Clip] = field(default_factory=list)
    top_clips: list[Clip] = field(default_factory=list)
    clips_by_design: dict[str, list[Clip]] = field(default_factory=dict)


def build_pipeline(tech_name: str, scale: BenchScale) -> TechPipeline:
    tech = technology_by_name(tech_name)
    library = generate_library(tech)
    pipeline = TechPipeline(tech_name=tech_name)
    seed = hash(tech_name) % 1000
    for profile in scale.profiles:
        for util in scale.utilizations:
            design = synthesize_design(
                library, profile, scale.n_instances,
                seed=seed, design_name=f"{profile}_{tech_name}_u{int(util * 100)}",
            )
            seed += 1
            place_design(design, utilization=util, seed=seed)
            grid = RoutingGrid.for_die(tech, design.die, max_metal=scale.max_metal)
            routed = route_design(design, grid)
            clips = extract_clips(
                design, grid, routed, ClipWindowSpec(cols=7, rows=10)
            )
            pipeline.designs.append((design, util, profile, routed))
            pipeline.clips.extend(clips)
            pipeline.clips_by_design[design.name] = clips
    pipeline.top_clips = select_top_clips(pipeline.clips, k=scale.top_k)
    return pipeline


_PIPELINES: dict[str, TechPipeline] = {}


def pipeline_for(tech_name: str, scale: BenchScale) -> TechPipeline:
    if tech_name not in _PIPELINES:
        _PIPELINES[tech_name] = build_pipeline(tech_name, scale)
    return _PIPELINES[tech_name]


@pytest.fixture(scope="session")
def n28_12t_pipeline(scale):
    return pipeline_for("N28-12T", scale)


@pytest.fixture(scope="session")
def n28_8t_pipeline(scale):
    return pipeline_for("N28-8T", scale)


@pytest.fixture(scope="session")
def n7_9t_pipeline(scale):
    return pipeline_for("N7-9T", scale)
