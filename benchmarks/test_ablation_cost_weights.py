"""Ablation: alternative routing-cost definitions (via weight sweep).

The paper notes it has "separately observed that the ILP sensibly
handles alternative routing cost definitions with different weighting
of via count".  This ablation sweeps the via weight and checks the
expected economics: higher via prices never increase the optimal via
count, never decrease optimal wirelength, and the solution stays
optimal and DRC-clean throughout.
"""

import pytest

from repro.clips import SyntheticClipSpec, make_synthetic_clip
from repro.drc import check_clip_routing
from repro.router import OptRouter, RouteStatus, RuleConfig
from repro.util import format_table

WEIGHTS = (1.0, 2.0, 4.0, 8.0)


def _clips(n=3):
    return [
        make_synthetic_clip(
            SyntheticClipSpec(nx=6, ny=8, nz=4, n_nets=3, sinks_per_net=1,
                              access_points_per_pin=2),
            seed=seed,
        )
        for seed in range(n)
    ]


def test_via_weight_sweep(results_dir, scale):
    rows = []
    for clip in _clips():
        prev_vias = None
        prev_wl = None
        for weight in WEIGHTS:
            router = OptRouter(via_cost=weight, time_limit=scale.time_limit)
            rules = RuleConfig()
            result = router.route(clip, rules)
            assert result.status is RouteStatus.OPTIMAL
            assert check_clip_routing(clip, rules, result.routing) == []
            rows.append(
                (clip.name, weight, result.wirelength, result.n_vias,
                 f"{result.cost:.1f}")
            )
            if prev_vias is not None:
                # Raising the via price cannot raise the optimal via
                # count, nor lower the optimal wirelength.
                assert result.n_vias <= prev_vias
                assert result.wirelength >= prev_wl
            prev_vias, prev_wl = result.n_vias, result.wirelength
    table = format_table(
        ("clip", "via wt", "WL", "vias", "cost"),
        rows,
        title="Ablation: via-weight sweep (alternative cost definitions)",
    )
    print("\n" + table)
    (results_dir / "ablation_via_weight.txt").write_text(table + "\n")


def test_wire_cost_scales_objective(scale):
    clip = _clips(1)[0]
    r1 = OptRouter(wire_cost=1.0, time_limit=scale.time_limit).route(clip)
    r2 = OptRouter(wire_cost=2.0, via_cost=8.0,
                   time_limit=scale.time_limit).route(clip)
    assert r1.feasible and r2.feasible
    # Doubling all weights doubles the optimum (same solution space).
    assert r2.cost == pytest.approx(2 * r1.cost)


@pytest.mark.benchmark(group="ablation")
def test_bench_weighted_route(benchmark, scale):
    clip = _clips(1)[0]
    router = OptRouter(via_cost=8.0, time_limit=scale.time_limit)
    result = benchmark.pedantic(router.route, args=(clip,), rounds=1, iterations=1)
    assert result.feasible
