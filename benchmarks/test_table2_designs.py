"""Table 2 reproduction: benchmark design matrix.

Regenerates the paper's benchmark-design table (technology, design,
instance count, achieved utilization) from the synthetic substrate and
benchmarks the placement step that produces it.
"""

import pytest

from repro.cells import generate_library
from repro.netlist import synthesize_design
from repro.place import check_placement, place_design
from repro.tech import technology_by_name
from repro.util import format_table


def test_table2_design_matrix(
    n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline, results_dir
):
    rows = []
    for pipeline in (n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline):
        for design, util, profile, _routed in pipeline.designs:
            rows.append(
                (
                    pipeline.tech_name,
                    profile.upper(),
                    design.n_instances,
                    f"{design.utilization() * 100:.0f}%",
                )
            )
    table = format_table(
        ("Tech.", "Design", "#inst.", "Util."),
        rows,
        title="Table 2 (reproduced): benchmark designs",
    )
    print("\n" + table)
    (results_dir / "table2.txt").write_text(table + "\n")

    # Shape: both designs exist in every technology at high utilization.
    techs = {row[0] for row in rows}
    assert techs == {"N28-12T", "N28-8T", "N7-9T"}
    for row in rows:
        assert int(row[3].rstrip("%")) >= 60


def test_placements_are_legal(n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline):
    from repro.place import RowGrid

    for pipeline in (n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline):
        tech = technology_by_name(pipeline.tech_name)
        for design, _util, _profile, _routed in pipeline.designs:
            grid = RowGrid(
                die=design.die,
                row_height=tech.row_height,
                site_width=tech.site_width,
            )
            assert check_placement(design, grid) == []


@pytest.mark.benchmark(group="table2")
def test_bench_placement(benchmark, scale):
    """Placement throughput at Table 2 utilizations."""
    tech = technology_by_name("N28-12T")
    library = generate_library(tech)

    def place_once():
        design = synthesize_design(
            library, "aes", scale.n_instances, seed=99
        )
        return place_design(design, utilization=0.88, seed=99)

    result = benchmark(place_once)
    assert result.hpwl_final <= result.hpwl_initial
