"""The paper's observation (2): pin cost vs switchbox routability gap.

Section 4.2 observes that many clips selected by the pin-cost metric
show zero Δcost under upper-layer rules, i.e. pin accessibility alone
does not capture switchbox routability, and names a better metric as
future work.  This bench quantifies the gap on synthetic clips and
evaluates the candidate congestion metric in
``repro.clips.routability`` against actual OptRouter difficulty.
"""

import pytest

from repro.clips import SyntheticClipSpec, clip_pin_cost, make_synthetic_clip
from repro.clips.routability import routability_score
from repro.router import OptRouter, RuleConfig, ViaRestriction
from repro.util import format_table


def _population(n=10):
    clips = []
    for seed in range(n):
        crowd = 2 + seed % 3
        clips.append(
            make_synthetic_clip(
                SyntheticClipSpec(
                    nx=6, ny=8, nz=3, n_nets=crowd + 1, sinks_per_net=1,
                    access_points_per_pin=2, pin_spacing_cols=1,
                ),
                seed=seed,
            )
        )
    return clips


def _rank(values):
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    for rank, index in enumerate(order):
        ranks[index] = float(rank)
    return ranks


def _spearman(a, b):
    ra, rb = _rank(a), _rank(b)
    n = len(a)
    mean = (n - 1) / 2
    cov = sum((x - mean) * (y - mean) for x, y in zip(ra, rb))
    var = sum((x - mean) ** 2 for x in ra)
    return cov / var if var else 0.0


def test_metric_gap_table(results_dir, scale):
    clips = _population()
    router = OptRouter(time_limit=scale.time_limit)
    rules = RuleConfig(
        name="HARD", sadp_min_metal=2,
        via_restriction=ViaRestriction.ORTHOGONAL,
    )
    difficulty = []
    pin_costs = []
    congestion = []
    rows = []
    for clip in clips:
        base = router.route(clip, RuleConfig())
        hard = router.route(clip, rules)
        if not base.feasible:
            continue
        delta = (hard.cost - base.cost) if hard.feasible else 500.0
        difficulty.append(delta)
        pin_costs.append(clip_pin_cost(clip))
        congestion.append(routability_score(clip))
        rows.append(
            (clip.name, f"{pin_costs[-1]:.1f}", f"{congestion[-1]:.2f}",
             f"{delta:.1f}")
        )
    assert len(difficulty) >= 5

    rho_pin = _spearman(pin_costs, difficulty)
    rho_congestion = _spearman(congestion, difficulty)
    table = format_table(
        ("clip", "pin cost", "congestion", "Δcost (HARD)"),
        rows,
        title="Metric gap: pin cost vs switchbox congestion vs true Δcost",
    )
    summary = (
        f"\nSpearman(pin cost, Δcost)   = {rho_pin:+.2f}"
        f"\nSpearman(congestion, Δcost) = {rho_congestion:+.2f}\n"
    )
    print("\n" + table + summary)
    (results_dir / "metric_gap.txt").write_text(table + summary)

    # The paper's gap claim: pin cost is not a perfect predictor.
    assert rho_pin < 0.999


def test_zero_delta_clips_exist(scale):
    """Many selected clips show zero Δcost under upper-layer-only rules
    (the paper: "almost half of routing clips show zero Δcost" for
    rules applied above M3)."""
    clips = [
        make_synthetic_clip(
            SyntheticClipSpec(
                nx=6, ny=8, nz=4, n_nets=3 + seed % 2, sinks_per_net=1,
                access_points_per_pin=2, pin_spacing_cols=1,
            ),
            seed=seed,
        )
        for seed in range(6)
    ]
    router = OptRouter(time_limit=scale.time_limit)
    upper_only = RuleConfig(name="UPPER", sadp_min_metal=5)  # top layer only
    zeros = 0
    total = 0
    for clip in clips:
        base = router.route(clip, RuleConfig())
        constrained = router.route(clip, upper_only)
        if base.feasible and constrained.feasible:
            total += 1
            if constrained.cost == pytest.approx(base.cost):
                zeros += 1
    assert total > 0
    assert zeros / total >= 0.5
