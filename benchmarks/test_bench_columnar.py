"""Columnar-core benchmark: object pipeline vs CSR pipeline, cold.

Regenerates ``BENCH_columnar.json`` at the repo root: per (clip, rule)
cold-path wall times -- build, presolve, canonical serialization, and
solve -- for the pre-columnar *object* pipeline and the shipping
*columnar* pipeline, under RULE1 (baseline), RULE7 (via-shape
blocking), and RULE11 (SADP + full via blocking).  The accompanying
assertions are the PR's acceptance gates:

- >= 2x median cold build+presolve+serialize speedup on every
  benchmarked rule (solve time is excluded from the ratio: both arms
  hand HiGHS byte-identical reduced models, so their solve walls
  measure the same work);
- bitwise-equal statuses and objectives between the two arms on every
  (clip, rule) pair, and zero decided->LIMIT regressions;
- identical solve-cache keys from either representation (the columnar
  canonical serialization is the object one, byte for byte).

Arms, per (clip, rule):

- *columnar* -- the shipping path: ``OptRouter.build`` (COO triplets
  -> one CSR construction), :func:`presolve_routing_ilp` (vectorized
  CSR passes), :meth:`CsrModel.canonical_text`, and
  :func:`solve_reduced` over the CSR result (zero-copy HiGHS handoff).
- *object* -- the pre-columnar pipeline reconstructed from the same
  build: object-model materialization (``ilp.model``), the object
  presolve catalog over aggregated object rows
  (:func:`presolve_model`), :func:`write_lp_canonical`, and
  :func:`solve_reduced` over the object result.  The shared
  graph/specialization cost inside ``build`` is charged to both arms;
  the object arm additionally pays the object-model construction the
  old path could not avoid, so the measured ratio *understates* the
  speedup over the historical builder (which also paid per-expression
  arithmetic during emission).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.analysis import presolve_routing_ilp, solve_reduced
from repro.analysis.presolve import (
    aggregate_via_adjacency,
    presolve_model,
    reachability_fixes,
    uturn_pairs,
)
from repro.analysis.reductions import make_uturn_row_pass
from repro.clips import SyntheticClipSpec, make_synthetic_clip, select_top_clips
from repro.eval import paper_rule
from repro.ilp.highs_backend import solve_with_highs
from repro.ilp.lp_format import write_lp_canonical
from repro.ilp.solve_cache import SolveCache
from repro.ilp.status import SolveStatus
from repro.router import OptRouter

BENCH_PATH = Path(__file__).parent.parent / "BENCH_columnar.json"

RULES = ("RULE1", "RULE7", "RULE11")
TIME_LIMIT = 60.0  # >> any solve in the pool; LIMIT means a bug
SPEEDUP_GATE = 2.0

#: Same pool as the presolve benchmark: 2-pin-net clip shapes where
#: the reduction engine has full leverage, ranked by pin cost.
SHAPES = (
    SyntheticClipSpec(nx=4, ny=5, nz=6, n_nets=4, sinks_per_net=1,
                      access_points_per_pin=2),
    SyntheticClipSpec(nx=4, ny=4, nz=6, n_nets=3, sinks_per_net=1,
                      access_points_per_pin=2),
    SyntheticClipSpec(nx=4, ny=5, nz=6, n_nets=3, sinks_per_net=1,
                      access_points_per_pin=2),
)
SEEDS_PER_SHAPE = 50
TOP_K = 100

#: The seed reason the shipping path uses for reachability fixes; the
#: object arm must match it so pass notes stay comparable.
_SEED_REASON = "arc unreachable on any source->sink path"


def clip_pool():
    pool = []
    for shape_no, spec in enumerate(SHAPES):
        for seed in range(SEEDS_PER_SHAPE):
            try:
                clip = make_synthetic_clip(
                    spec, seed=seed, name=f"bench_sh{shape_no}_s{seed}"
                )
            except ValueError:
                continue  # spec too tight for this seed
            pool.append(clip)
    return select_top_clips(pool, k=TOP_K)


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def _solver(model, limit):
    return solve_with_highs(model, time_limit=limit)


def _object_presolve(ilp):
    """The pre-columnar presolve pipeline: seed fixes, via-usage
    aggregation, then the object pass catalog over object rows."""
    fixes, _ = reachability_fixes(ilp)
    aggregated, _, _ = aggregate_via_adjacency(ilp)
    return presolve_model(
        aggregated.to_model(),
        seed_fixes=fixes,
        seed_reason=_SEED_REASON,
        extra_passes=(make_uturn_row_pass(uturn_pairs(ilp)),),
    )


def bench_pair(router, clip, rule_name):
    rules = paper_rule(rule_name)
    cache_options = {
        "backend": "highs", "time_limit": TIME_LIMIT, "presolve": True,
    }

    # Columnar arm: the shipping cold path.
    ilp_c, col_build = timed(router.build, clip, rules)
    pre_c, col_presolve = timed(presolve_routing_ilp, ilp_c)
    _, col_serialize = timed(ilp_c.csr.canonical_text)
    col_key = SolveCache.key_for(ilp_c.csr, cache_options)
    col_sol, col_solve = timed(solve_reduced, pre_c, _solver, TIME_LIMIT)

    # Object arm: the same clip through the pre-columnar pipeline.
    ilp_o, obj_build = timed(router.build, clip, rules)
    model, obj_materialize = timed(lambda: ilp_o.model)
    pre_o, obj_presolve = timed(_object_presolve, ilp_o)
    _, obj_serialize = timed(write_lp_canonical, model)
    obj_key = SolveCache.key_for(model, cache_options)
    obj_sol, obj_solve = timed(solve_reduced, pre_o, _solver, TIME_LIMIT)

    col_cold = col_build + col_presolve + col_serialize
    obj_cold = obj_build + obj_materialize + obj_presolve + obj_serialize
    return {
        "clip": clip.name,
        "rule": rule_name,
        "columnar_build_seconds": round(col_build, 6),
        "columnar_presolve_seconds": round(col_presolve, 6),
        "columnar_serialize_seconds": round(col_serialize, 6),
        "columnar_solve_seconds": round(col_solve, 6),
        "columnar_cold_seconds": round(col_cold, 6),
        "object_build_seconds": round(obj_build + obj_materialize, 6),
        "object_presolve_seconds": round(obj_presolve, 6),
        "object_serialize_seconds": round(obj_serialize, 6),
        "object_solve_seconds": round(obj_solve, 6),
        "object_cold_seconds": round(obj_cold, 6),
        "columnar_status": col_sol.status.value,
        "object_status": obj_sol.status.value,
        "columnar_objective": col_sol.objective,
        "object_objective": obj_sol.objective,
        "cache_keys_match": col_key == obj_key,
    }


def summarize(records):
    out = {}
    for rule_name in RULES:
        rows = [r for r in records if r["rule"] == rule_name]
        med_col = statistics.median(r["columnar_cold_seconds"] for r in rows)
        med_obj = statistics.median(r["object_cold_seconds"] for r in rows)
        out[rule_name] = {
            "n_clips": len(rows),
            "median_columnar_cold_seconds": med_col,
            "median_object_cold_seconds": med_obj,
            "cold_speedup": (med_obj / med_col) if med_col else 0.0,
            "median_columnar_build_seconds": statistics.median(
                r["columnar_build_seconds"] for r in rows
            ),
            "median_columnar_presolve_seconds": statistics.median(
                r["columnar_presolve_seconds"] for r in rows
            ),
            "median_columnar_serialize_seconds": statistics.median(
                r["columnar_serialize_seconds"] for r in rows
            ),
            "median_columnar_solve_seconds": statistics.median(
                r["columnar_solve_seconds"] for r in rows
            ),
            "median_object_solve_seconds": statistics.median(
                r["object_solve_seconds"] for r in rows
            ),
            "limit_regressions": sum(
                1 for r in rows
                if r["columnar_status"] == SolveStatus.LIMIT.value
                and r["object_status"] != SolveStatus.LIMIT.value
            ),
            "status_mismatches": sum(
                1 for r in rows if r["columnar_status"] != r["object_status"]
            ),
            "cache_key_mismatches": sum(
                1 for r in rows if not r["cache_keys_match"]
            ),
        }
    return out


def test_bench_columnar_vs_object():
    # reuse_formulation=False: every build in either arm is cold --
    # the shared base-formulation cache would otherwise hand the
    # second (object) build of each pair a warm core.
    router = OptRouter(certify=False, presolve=False,
                       reuse_formulation=False)
    clips = clip_pool()
    assert len(clips) == TOP_K
    records = [
        bench_pair(router, clip, rule_name)
        for clip in clips
        for rule_name in RULES
    ]
    summary = summarize(records)
    payload = {
        "config": {
            "rules": list(RULES),
            "time_limit_seconds": TIME_LIMIT,
            "top_k": TOP_K,
            "speedup_gate": SPEEDUP_GATE,
            "shapes": [
                {
                    "nx": s.nx, "ny": s.ny, "nz": s.nz, "n_nets": s.n_nets,
                    "sinks_per_net": s.sinks_per_net,
                    "access_points_per_pin": s.access_points_per_pin,
                }
                for s in SHAPES
            ],
        },
        "summary": summary,
        "records": records,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Soundness, measured: both arms reduce to byte-identical models,
    # so statuses and objectives must agree bitwise.
    for record in records:
        assert record["columnar_status"] == record["object_status"], record
        if record["columnar_status"] == SolveStatus.OPTIMAL.value:
            assert (
                record["columnar_objective"] == record["object_objective"]
            ), record
        assert record["cache_keys_match"], record

    for rule_name in RULES:
        stats = summary[rule_name]
        assert stats["limit_regressions"] == 0, stats
        assert stats["status_mismatches"] == 0, stats
        assert stats["cold_speedup"] >= SPEEDUP_GATE, stats
