"""Footnote 6 reproduction: OptRouter vs the heuristic router.

The paper validates OptRouter against a commercial router and reports
Δcost (optimal minus heuristic) always non-positive, averaging -10 to
-15 against an average clip cost of ~380.  Here the comparator is the
sequential A* baseline; a single-pass baseline (no restart search)
plays the role of the one-shot commercial run.
"""

import pytest

from repro.eval import validate_against_baseline
from repro.router import BaselineClipRouter, OptRouter, RuleConfig
from repro.util import format_table


def test_fn6_optrouter_never_worse(
    n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline, scale, results_dir
):
    rows = []
    all_deltas = []
    for pipeline in (n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline):
        records = validate_against_baseline(
            pipeline.top_clips,
            RuleConfig(),
            OptRouter(time_limit=scale.time_limit),
            BaselineClipRouter(n_restarts=1),  # one-shot heuristic pass
        )
        comparable = [r for r in records if r.comparable]
        for record in comparable:
            assert record.delta <= 1e-9, (
                f"OptRouter worse than heuristic on {record.clip_name}"
            )
        deltas = [r.delta for r in comparable]
        costs = [r.baseline_cost for r in comparable]
        all_deltas.extend(deltas)
        if comparable:
            rows.append(
                (
                    pipeline.tech_name,
                    len(comparable),
                    f"{sum(deltas) / len(deltas):.1f}",
                    f"{min(deltas):.1f}",
                    f"{sum(costs) / len(costs):.0f}",
                )
            )
    table = format_table(
        ("Tech.", "#clips", "avg Δcost", "best Δcost", "avg heuristic cost"),
        rows,
        title="Footnote 6 (reproduced): OptRouter vs heuristic router",
    )
    print("\n" + table)
    (results_dir / "fn6.txt").write_text(table + "\n")
    assert all_deltas, "no comparable clips"


@pytest.mark.benchmark(group="fn6")
def test_bench_baseline_router(benchmark, n28_12t_pipeline):
    clip = n28_12t_pipeline.top_clips[0]
    router = BaselineClipRouter(n_restarts=1)
    result = benchmark(router.route, clip, RuleConfig())
    assert result.feasible or not result.feasible  # smoke: completes


@pytest.mark.benchmark(group="fn6")
def test_bench_optrouter_single_clip(benchmark, n28_12t_pipeline, scale):
    clip = n28_12t_pipeline.top_clips[-1]
    router = OptRouter(time_limit=scale.time_limit)

    result = benchmark.pedantic(
        router.route, args=(clip, RuleConfig()), rounds=1, iterations=1
    )
    assert result.status is not None
