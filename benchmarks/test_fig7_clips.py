"""Figure 7 reproduction: example routing clips from each technology.

Renders one extracted clip per technology to SVG (the paper shows
photographs of N28-12T, N28-8T and N7-9T clips) and benchmarks the
clip-extraction step.
"""

import pytest

from repro.clips import ClipWindowSpec, extract_clips
from repro.viz import render_clip_svg


def test_fig7_clip_renders(
    n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline, results_dir
):
    for pipeline in (n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline):
        assert pipeline.top_clips, pipeline.tech_name
        clip = pipeline.top_clips[0]
        svg = render_clip_svg(clip)
        path = results_dir / f"fig7_{pipeline.tech_name.lower()}.svg"
        path.write_text(svg)
        print(f"\nwrote {path} ({clip.name}, pin cost {clip.pin_cost:.1f})")
        assert svg.startswith("<svg")


def test_clip_dimensions_match_paper_window(
    n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline
):
    # 1um x 1um window = 7 vertical x 10 horizontal tracks.
    for pipeline in (n28_12t_pipeline, n28_8t_pipeline, n7_9t_pipeline):
        for clip in pipeline.top_clips:
            assert clip.nx <= 7
            assert clip.ny <= 10


def test_n7_clips_have_sparser_pins(n28_12t_pipeline, n7_9t_pipeline):
    """Figure 9's point: 7nm pins offer far fewer access points."""

    def mean_access(pipeline):
        counts = [
            len(pin.access)
            for clip in pipeline.top_clips
            for net in clip.nets
            for pin in net.pins
            if not pin.on_boundary
        ]
        return sum(counts) / max(1, len(counts))

    assert mean_access(n7_9t_pipeline) < mean_access(n28_12t_pipeline)


@pytest.mark.benchmark(group="fig7")
def test_bench_clip_extraction(benchmark, n28_12t_pipeline):
    from repro.route import RoutingGrid
    from repro.tech import technology_by_name

    design, _util, _profile, routed = n28_12t_pipeline.designs[0]
    tech = technology_by_name("N28-12T")
    grid = RoutingGrid.for_die(tech, design.die, max_metal=6)

    clips = benchmark(
        extract_clips, design, grid, routed, ClipWindowSpec(cols=7, rows=10)
    )
    assert clips
