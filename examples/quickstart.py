"""Quickstart: optimally route one switchbox clip with OptRouter.

Builds a small synthetic clip (a switchbox instance like the ones the
paper extracts from routed layouts), solves it to optimality under two
rule configurations, and prints the routings plus the Δcost the second
configuration induces.

Run:  python examples/quickstart.py
"""

from repro.clips import SyntheticClipSpec, make_synthetic_clip
from repro.drc import check_clip_routing
from repro.router import OptRouter, RuleConfig, ViaRestriction
from repro.viz import render_clip_ascii, render_routing_ascii


def main() -> None:
    clip = make_synthetic_clip(
        SyntheticClipSpec(
            nx=7, ny=10, nz=4,       # 7 x 10 tracks, M2..M5
            n_nets=3, sinks_per_net=1,
            access_points_per_pin=3, pin_spacing_cols=1,
        ),
        seed=3,
    )
    print("=== the clip (pins per layer) ===")
    print(render_clip_ascii(clip))

    router = OptRouter()  # cost = wirelength + 4 x #vias, as in the paper

    rule1 = RuleConfig(name="RULE1")  # no SADP, no via restriction
    base = router.route(clip, rule1)
    print("\n=== RULE1 (unconstrained) ===")
    print(f"status={base.status.value}  cost={base.cost}  "
          f"wirelength={base.wirelength}  vias={base.n_vias}  "
          f"({base.solve_seconds:.2f}s)")
    print(render_routing_ascii(clip, base.routing))
    assert check_clip_routing(clip, rule1, base.routing) == []

    rule = RuleConfig(
        name="RULE8",
        sadp_min_metal=3,
        via_restriction=ViaRestriction.ORTHOGONAL,
    )
    constrained = router.route(clip, rule)
    print(f"\n=== {rule.describe()} ===")
    if constrained.feasible:
        print(f"status={constrained.status.value}  cost={constrained.cost}  "
              f"wirelength={constrained.wirelength}  vias={constrained.n_vias}")
        print(f"Δcost vs RULE1: {constrained.cost - base.cost:+.1f}")
        assert check_clip_routing(clip, rule, constrained.routing) == []
    else:
        print("infeasible under this rule configuration")


if __name__ == "__main__":
    main()
