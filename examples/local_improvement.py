"""Local improvement of full-chip routing with OptRouter.

Implements the paper's closing observation: OptRouter's margin over
the heuristic router on difficult clips "opens up the possibility of
(massively distributed) local improvement of detailed routing
solutions".  Routes a design heuristically, then optimally re-routes
its most difficult clips and stitches the improvements back in.

Run:  python examples/local_improvement.py
"""

from repro.cells import generate_library
from repro.improve import improve_routing
from repro.netlist import synthesize_design
from repro.place import place_design
from repro.route import RoutingGrid
from repro.route.detailed_router import route_design
from repro.router import OptRouter
from repro.tech import make_n28_8t


def main() -> None:
    tech = make_n28_8t()
    library = generate_library(tech)
    design = synthesize_design(library, "m0", 220, seed=5)
    place_design(design, utilization=0.93, seed=5)
    # Only M2-M3: scarce layers force the heuristic into joint
    # arrangements that optimal per-window re-routing can undo.
    grid = RoutingGrid.for_die(tech, design.die, max_metal=3)

    routed = route_design(design, grid)
    before = routed.routed_cost()
    print(f"heuristic routing: cost={before:.0f} "
          f"(WL={routed.total_wirelength_steps} steps, "
          f"vias={routed.total_vias}, {len(routed.failed_nets)} failures)")

    report = improve_routing(
        design, grid, routed,
        router=OptRouter(time_limit=30.0),
        max_clips=10,
    )
    after = routed.routed_cost()
    print(f"\nper-clip results:")
    for clip in report.clips:
        status = "improved" if clip.gain > 0 else (
            "already optimal" if clip.new_cost is not None else "no optimum proven"
        )
        new = f"{clip.new_cost:.0f}" if clip.new_cost is not None else "-"
        print(f"  {clip.clip_name}: {clip.old_cost:.0f} -> {new}  [{status}]")

    print(f"\n{report.summary()}")
    print(f"chip-level routing cost: {before:.0f} -> {after:.0f} "
          f"({(before - after) / before:.2%} saved)")


if __name__ == "__main__":
    main()
