"""Full reproduction flow on a synthetic design (paper Section 4).

Synthesizes an AES-like netlist against the synthetic N28-12T library,
places it at high utilization, detail-routes it with the heuristic
full-chip router, extracts 1µm x 1µm clips, ranks them by the Taghavi
pin-cost metric, optimally re-routes the most difficult clips with
OptRouter, and compares against the heuristic baseline (the footnote-6
validation).  Artifacts (LEF, DEF, clip SVGs) land in
``examples/out/``.

Run:  python examples/full_flow.py
"""

from pathlib import Path

from repro.cells import generate_library
from repro.clips import ClipWindowSpec, extract_clips, select_top_clips
from repro.eval import validate_against_baseline
from repro.lefdef import write_def, write_lef
from repro.netlist import synthesize_design
from repro.place import check_placement, place_design
from repro.route import RoutingGrid
from repro.route.detailed_router import route_design
from repro.router import OptRouter, RuleConfig
from repro.tech import make_n28_12t
from repro.viz import render_clip_svg

OUT = Path(__file__).parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    tech = make_n28_12t()
    library = generate_library(tech)

    design = synthesize_design(library, "aes", 150, seed=42)
    print(f"design: {design.name}  instances={design.n_instances}  "
          f"nets={design.n_nets}")

    placement = place_design(design, utilization=0.88, seed=1)
    violations = check_placement(design, placement.grid)
    print(f"placed at utilization {placement.utilization:.2%}, "
          f"HPWL {placement.hpwl_initial} -> {placement.hpwl_final}, "
          f"{len(violations)} legality violations")

    (OUT / "library.lef").write_text(write_lef(library, tech))

    grid = RoutingGrid.for_die(tech, design.die, max_metal=6)
    routed = route_design(design, grid)
    print(f"routed: {len(routed.routes)} nets, "
          f"{len(routed.failed_nets)} failures, "
          f"WL={routed.total_wirelength_steps} steps, "
          f"vias={routed.total_vias}")
    (OUT / "routed.def").write_text(write_def(design, routed.routes))

    clips = extract_clips(design, grid, routed, ClipWindowSpec(cols=7, rows=10))
    top = select_top_clips(clips, k=5)
    print(f"\nextracted {len(clips)} clips; top-5 pin costs: "
          f"{[round(c.pin_cost, 1) for c in top]}")

    print("\nOptRouter vs heuristic baseline on the top clips "
          "(footnote-6 validation):")
    records = validate_against_baseline(
        top, RuleConfig(), OptRouter(time_limit=60.0)
    )
    for record in records:
        if record.comparable:
            print(f"  {record.clip_name}: opt={record.opt_cost:.0f} "
                  f"heuristic={record.baseline_cost:.0f} "
                  f"Δ={record.delta:+.0f}")
        else:
            print(f"  {record.clip_name}: not comparable "
                  f"(opt={record.opt_cost}, heuristic={record.baseline_cost})")

    router = OptRouter(time_limit=60.0)
    for index, clip in enumerate(top[:3]):
        result = router.route(clip, RuleConfig())
        svg = render_clip_svg(clip, result.routing if result.feasible else None)
        path = OUT / f"clip_{index}.svg"
        path.write_text(svg)
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
