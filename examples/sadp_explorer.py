"""SADP end-of-line rule exploration on a crafted clip.

Builds a clip whose unconstrained optimum places two facing wire tips
one track apart -- legal under LELE patterning, forbidden under the
SADP end-of-line rules (paper Figure 5).  Shows how OptRouter reshapes
the routing once the layer is declared SADP, and what that costs.

Run:  python examples/sadp_explorer.py
"""

from repro.clips import Clip, ClipNet, ClipPin
from repro.clips.clip import paper_directions
from repro.drc import check_clip_routing
from repro.router import OptRouter, RuleConfig
from repro.viz import render_routing_ascii


def pin(*vertices):
    return ClipPin(access=frozenset(vertices))


def build_clip() -> Clip:
    # Two nets whose cheapest M3 (horizontal) segments end tip-to-tip.
    nets = (
        ClipNet("left", (pin((0, 4, 0)), pin((3, 6, 0)))),
        ClipNet("right", (pin((4, 4, 0)), pin((6, 6, 0)))),
    )
    return Clip(
        name="sadp_demo", nx=7, ny=10, nz=3,
        horizontal=paper_directions(3), nets=nets,
    )


def main() -> None:
    clip = build_clip()
    router = OptRouter()

    lele = RuleConfig(name="LELE")
    base = router.route(clip, lele)
    print("=== all-LELE stack (no EOL restrictions) ===")
    print(f"cost={base.cost}  wirelength={base.wirelength}  vias={base.n_vias}")
    print(render_routing_ascii(clip, base.routing))

    sadp = RuleConfig(name="SADP>=M2", sadp_min_metal=2)
    constrained = router.route(clip, sadp)
    print("\n=== SADP on all layers ===")
    if constrained.feasible:
        print(f"cost={constrained.cost}  Δcost={constrained.cost - base.cost:+.1f}")
        print(render_routing_ascii(clip, constrained.routing))
        violations = check_clip_routing(clip, sadp, constrained.routing)
        print(f"independent SADP DRC violations: {len(violations)}")
    else:
        print("infeasible with SADP EOL rules")

    # Show that the unconstrained solution would NOT pass SADP DRC in
    # general (when it happens to, the Δcost above is simply 0).
    violations = check_clip_routing(clip, sadp, base.routing)
    print(f"\nLELE-optimal routing checked against SADP rules: "
          f"{len(violations)} violation(s)")
    for violation in violations:
        print(f"  {violation}")


if __name__ == "__main__":
    main()
