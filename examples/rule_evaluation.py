"""Design-rule impact evaluation on a clip population (Figure 6 flow).

Generates difficult synthetic clips for an N7-like pin configuration
(two access points per pin, adjacent pin columns), evaluates the
applicable Table 3 rule configurations with OptRouter, and prints the
paper-style artifacts: the rule table, the Δcost summary, and ASCII
versions of the Figure 10 sorted Δcost traces.

Run:  python examples/rule_evaluation.py
"""

from repro.clips import SyntheticClipSpec, make_synthetic_clip
from repro.eval import (
    EvalConfig,
    evaluate_clips,
    format_delta_cost_table,
    format_rule_table,
    rules_for_technology,
)
from repro.eval.report import format_sorted_traces


def main() -> None:
    spec = SyntheticClipSpec(
        nx=6, ny=8, nz=4,
        n_nets=4, sinks_per_net=1,
        access_points_per_pin=2, pin_spacing_cols=1,  # 7nm-like pins
        boundary_pin_prob=0.4,
    )
    clips = [make_synthetic_clip(spec, seed=s) for s in range(8)]
    rules = rules_for_technology("N7-9T")

    print(format_rule_table(rules, title="Rule configurations (N7-9T subset)"))
    print()

    study = evaluate_clips(
        clips, rules, EvalConfig(time_limit_per_clip=30.0)
    )
    print(format_delta_cost_table(study, title="Δcost vs RULE1 per rule"))
    print()
    print("Sorted Δcost traces (one clip per column, Figure 10 style):")
    print(format_sorted_traces(study))

    for rule in rules[1:]:
        n_inf = study.infeasible_count(rule.name)
        if n_inf:
            print(f"{rule.name}: {n_inf}/{len(clips)} clips became infeasible")


if __name__ == "__main__":
    main()
